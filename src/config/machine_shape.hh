/**
 * @file
 * Declarative machine shapes: the JSON description of one simulated
 * machine (msim-shape-v1).
 *
 * A shape file names every knob of MsConfig (units, per-unit
 * pipeline, ring hop latency, icache and data bank geometry, ARB
 * entries and full policy, predictor kind with RAS and descriptor
 * cache sizes, the optional shared L2 — "l2": null disables it,
 * "l2": {size_bytes, assoc, block_bytes, hit_latency, num_banks,
 * mshrs_per_bank, inclusion} enables it — and bus parameters) or of
 * the ScalarConfig baseline (which takes the same "l2" key), with
 * library defaults for anything omitted. Parsing is strict: unknown
 * or duplicate keys, wrong types, and out-of-range values all throw
 * ConfigError carrying the dotted field path ("dcache.bank_size_bytes"),
 * and every parsed shape passes MsConfig::validate() before it is
 * returned — a typo can never silently simulate a default machine.
 *
 * Shapes ship as files in <repo>/shapes (one per named preset;
 * overridable with $MSIM_SHAPE_DIR) and double as inline "machine"
 * objects in msim-rpc-v1 run/sweep requests. Serialization is
 * canonical (full form, fixed key order), so parse → serialize →
 * parse is the identity and shape equality is string equality of the
 * canonical dumps.
 */

#ifndef MSIM_CONFIG_MACHINE_SHAPE_HH
#define MSIM_CONFIG_MACHINE_SHAPE_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "core/ms_config.hh"
#include "core/scalar_processor.hh"
#include "sim/runner.hh"

namespace msim::config {

/** Schema identifier of shape files and inline machine objects. */
inline constexpr const char *kShapeSchema = "msim-shape-v1";

/** A malformed shape: carries the dotted path of the bad field. */
class ConfigError : public FatalError
{
  public:
    ConfigError(const std::string &field_path, const std::string &why)
        : FatalError("shape config: " +
                     (field_path.empty() ? why
                                         : field_path + ": " + why)),
          path(field_path), reason(why)
    {
    }

    /** Dotted field path, e.g. "arb.full_policy" ("" = whole doc). */
    std::string path;
    /** The violation, without the path prefix. */
    std::string reason;
};

/** One declarative machine: a multiscalar or scalar configuration. */
struct MachineShape
{
    /** Preset name ("" for anonymous inline machines). */
    std::string name;
    /** True = MsConfig shape, false = ScalarConfig baseline shape. */
    bool multiscalar = true;
    MsConfig ms;
    ScalarConfig scalar;
};

/** Parse a shape from its JSON document (strict; throws ConfigError). */
MachineShape shapeFromJson(const json::Value &doc);

/** Serialize the canonical full form (fixed key order, all fields). */
json::Value shapeToJson(const MachineShape &shape);

/** Parse a shape from JSON text (ParseError becomes ConfigError). */
MachineShape parseShape(const std::string &text);

/** Load and parse one shape file. */
MachineShape loadShapeFile(const std::string &path);

/** Structural equality via canonical serialization. */
bool shapeEquals(const MachineShape &a, const MachineShape &b);

/**
 * The shape preset directory: $MSIM_SHAPE_DIR when set, else the
 * compiled-in <repo>/shapes default.
 */
std::string shapeDir();

/** Sorted preset names (the *.json basenames in shapeDir()). */
std::vector<std::string> listShapeNames();

/**
 * Resolve a shape by preset name or file path and cache the result.
 * Anything containing '/' or ending in ".json" is read as a file;
 * a bare name loads shapeDir()/<name>.json. Unknown presets throw
 * ConfigError listing the available names. Thread-safe.
 */
const MachineShape &resolveShape(const std::string &name_or_path);

/** Apply @p shape to @p spec (sets the mode and the machine config). */
void applyShape(RunSpec &spec, const MachineShape &shape);

/** A RunSpec running @p shape with all other knobs at defaults. */
RunSpec toRunSpec(const MachineShape &shape);

/** Convenience: resolveShape + toRunSpec. */
RunSpec specForShape(const std::string &name_or_path);

/** One file's lint verdict (error empty = clean). */
struct ShapeLint
{
    std::string file;
    std::string name;
    std::string error;
};

/**
 * Validate every shape file in shapeDir(): it must parse, pass
 * MsConfig/ScalarConfig::validate(), carry a "name" matching its
 * basename, and round-trip (parse → serialize → parse) to an equal
 * value. Returns one entry per file; CI's config-lint gate fails on
 * any non-empty error.
 */
std::vector<ShapeLint> lintShapeDir();

} // namespace msim::config

#endif // MSIM_CONFIG_MACHINE_SHAPE_HH
