#include "config/cost_model.hh"

namespace msim::config {

double
puCostProxy(const PuConfig &pu)
{
    // A 1-wide in-order five-stage pipeline is the baseline brick.
    double cost = 8.0;
    // The second issue port duplicates decode/issue and a simple ALU.
    cost += 6.0 * double(pu.issueWidth - 1);
    // Scoreboarded OoO issue pays for its window's tag CAM.
    if (pu.outOfOrder)
        cost += 0.5 * double(pu.windowSize);
    // Bimodal intra-task predictor: two bits per entry plus muxing.
    if (pu.intraBranchPredict)
        cost += double(pu.branchPredictorEntries) / 256.0;
    return cost;
}

double
hardwareCostProxy(const MsConfig &ms)
{
    const double units = double(ms.numUnits);
    const double banks = double(ms.effectiveBanks());

    double cost = units * puCostProxy(ms.pu);
    // Per-unit instruction caches.
    cost += units * double(ms.icache.sizeBytes) / 1024.0;
    // Data cache banks plus the unit × bank crossbar ports.
    cost += banks * double(ms.bankSizeBytes) / 1024.0;
    cost += 0.25 * units * banks;
    // ARB: each entry holds a block's worth of speculative data plus
    // per-stage load/store bits (paper section 2.3) — call it 1/16 KB.
    cost += banks * double(ms.arbEntriesPerBank) / 16.0;
    // Ring bandwidth: issue-width-wide links between all units; a
    // 1-cycle hop is the expensive design point, slower hops shrink
    // the wiring budget.
    cost += 4.0 * units * double(ms.pu.issueWidth) /
            double(1 + ms.ringHopLatency);
    // Task prediction hardware: the two-level PAs tables are the
    // costly variant, last-target a single table, static free.
    if (ms.predictor == "pas")
        cost += 16.0;
    else if (ms.predictor == "last")
        cost += 4.0;
    cost += double(ms.rasEntries) / 64.0;
    // Descriptor cache entries cache a task header (~32 bytes).
    cost += double(ms.descCacheEntries) / 32.0;
    // Shared L2: the SRAM array dominates; way comparators/muxes
    // scale with associativity per bank, and each MSHR is a small
    // CAM entry with a pending-transfer register.
    if (ms.l2) {
        cost += double(ms.l2->sizeBytes) / 1024.0;
        cost += 0.5 * double(ms.l2->assoc) * double(ms.l2->numBanks);
        cost += double(ms.l2->mshrsPerBank) *
                double(ms.l2->numBanks) / 4.0;
    }
    return cost;
}

} // namespace msim::config
