/**
 * @file
 * trace_explorer: run a workload with event tracing on and produce a
 * trace file plus the exact cycle-accounting breakdown.
 *
 *   trace_explorer <workload> [options]
 *
 * Options:
 *   --scalar            run the scalar baseline instead
 *   --units N           processing units (default 4)
 *   --width W           issue width 1|2 (default 1)
 *   --ooo               out-of-order issue units
 *   --sink KIND         chrome | csv | null (default chrome)
 *   --out PATH          trace file path (default msim.trace.json)
 *   --cats LIST         comma-separated categories to record
 *                       (task,seq,pu,arb,ring,cache,bus; default all)
 *   --max-events N      drop events beyond N (default 10M)
 *
 * The default chrome sink writes Chrome trace-event JSON: open it at
 * chrome://tracing or https://ui.perfetto.dev to see tasks moving
 * across units, squashes, ring forwards, cache misses and bus
 * transfers on a common cycle timeline.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "core/multiscalar_processor.hh"
#include "core/scalar_processor.hh"
#include "sim/runner.hh"
#include "trace/cycle_accounting.hh"
#include "workloads/workload.hh"

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: trace_explorer <workload> [options]\n"
                 "see the option summary in the file header\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace msim;

    if (argc < 2)
        return usage();

    RunSpec spec;
    spec.multiscalar = true;
    spec.trace.enabled = true;
    const std::string name = argv[1];

    try {
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            auto next = [&]() -> std::string {
                fatalIf(i + 1 >= argc, arg, " needs an argument");
                return argv[++i];
            };
            if (arg == "--scalar") {
                spec.multiscalar = false;
            } else if (arg == "--units") {
                spec.ms.numUnits = unsigned(std::stoul(next()));
            } else if (arg == "--width") {
                const unsigned w = unsigned(std::stoul(next()));
                spec.ms.pu.issueWidth = w;
                spec.scalar.pu.issueWidth = w;
            } else if (arg == "--ooo") {
                spec.ms.pu.outOfOrder = true;
                spec.scalar.pu.outOfOrder = true;
            } else if (arg == "--sink") {
                spec.trace.sink = next();
            } else if (arg == "--out") {
                spec.trace.path = next();
            } else if (arg == "--cats") {
                spec.trace.categories = traceCatMaskFromList(next());
            } else if (arg == "--max-events") {
                spec.trace.maxEvents = std::stoull(next());
            } else {
                return usage();
            }
        }

        workloads::Workload w = workloads::get(name);
        RunResult r = runWorkload(w, spec);

        std::printf("workload        %s\n", name.c_str());
        std::printf("machine         %s\n",
                    spec.multiscalar
                        ? (std::to_string(spec.ms.numUnits) +
                           "-unit multiscalar")
                              .c_str()
                        : "scalar");
        std::printf("cycles          %llu\n",
                    (unsigned long long)r.cycles);
        std::printf("IPC             %.3f\n", r.ipc());
        if (spec.trace.sink != "null") {
            std::printf("trace           %s (%s)\n",
                        spec.trace.path.c_str(),
                        spec.trace.sink.c_str());
            if (spec.trace.sink == "chrome") {
                std::printf("                open at chrome://tracing "
                            "or https://ui.perfetto.dev\n");
            }
        }

        const CycleAccountingResult &a = r.accounting;
        const std::uint64_t total = a.sum();
        std::printf("\ncycle accounting (%u unit%s x %llu cycles = "
                    "%llu unit-cycles):\n",
                    a.numUnits, a.numUnits == 1 ? "" : "s",
                    (unsigned long long)r.cycles,
                    (unsigned long long)total);
        for (size_t c = 0; c < kNumCycleCats; ++c) {
            std::printf("  %-12s %10llu  %5.1f%%\n",
                        cycleCatName(CycleCat(c)),
                        (unsigned long long)a.total[c],
                        total ? 100.0 * double(a.total[c]) /
                                    double(total)
                              : 0.0);
        }
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
