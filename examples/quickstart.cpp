/**
 * @file
 * Quickstart: assemble a small multiscalar program, run it on a
 * 4-unit multiscalar processor and on the scalar baseline, and
 * compare. This is the smallest complete tour of the public API:
 *
 *   assembler::assemble() -> Program
 *   MultiscalarProcessor(program, MsConfig).run() -> RunResult
 *   ScalarProcessor(program, ScalarConfig).run() -> RunResult
 *
 * The program sums f(i) over i in [0, 20000) where each iteration of
 * the loop is one task: the induction variable is forwarded at the
 * top of the task (the paper's key software technique) so iterations
 * overlap across processing units.
 */

#include <cstdio>

#include "asm/assembler.hh"
#include "core/multiscalar_processor.hh"
#include "core/scalar_processor.hh"

namespace {

const char *const kProgram = R"(
        .text
main:
        li   $16, 0               # sum
        li   $20, 0               # i
        li   $21, 20000           # bound
@ms     b    LOOP             !s

@ms .task main
@ms .targets LOOP
@ms .create $16, $20, $21
@ms .endtask

@ms .task LOOP
@ms .targets LOOP:loop, DONE
@ms .create $16, $20
@ms .endtask
LOOP:
        addu $20, $20, 1      !f  # forward the induction variable
        subu $8, $20, 1           # local copy of i
        mul  $9, $8, $8           # f(i) = i*i + 3i
        mul  $10, $8, 3
        addu $9, $9, $10
        addu $16, $16, $9     !f  # accumulate (consumed late)
        bne  $20, $21, LOOP   !s

@ms .task DONE
@ms .endtask
DONE:
        move $4, $16
        li   $2, 1
        syscall                   # print the sum
        li   $2, 10
        syscall                   # exit
)";

} // namespace

int
main()
{
    using namespace msim;

    // One source, two binaries: @ms lines exist only in the
    // multiscalar assembly (task descriptors, tag bits).
    assembler::AsmOptions scalar_opts;
    scalar_opts.multiscalar = false;
    Program scalar_prog = assembler::assemble(kProgram, scalar_opts);

    assembler::AsmOptions ms_opts;
    ms_opts.multiscalar = true;
    Program ms_prog = assembler::assemble(kProgram, ms_opts);

    ScalarProcessor scalar(scalar_prog, ScalarConfig{});
    RunResult sr = scalar.run();
    std::printf("scalar      : output=%-12s cycles=%-9llu IPC=%.2f\n",
                sr.output.c_str(), (unsigned long long)sr.cycles,
                sr.ipc());

    MsConfig cfg;
    cfg.numUnits = 4;
    MultiscalarProcessor ms(ms_prog, cfg);
    RunResult mr = ms.run();
    std::printf("multiscalar : output=%-12s cycles=%-9llu IPC=%.2f\n",
                mr.output.c_str(), (unsigned long long)mr.cycles,
                mr.ipc());
    std::printf("speedup     : %.2fx with %u units "
                "(task prediction %.1f%%)\n",
                double(sr.cycles) / double(mr.cycles), cfg.numUnits,
                100.0 * mr.predAccuracy());
    return sr.output == mr.output ? 0 : 1;
}
