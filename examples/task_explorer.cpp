/**
 * @file
 * task_explorer: a command line front end for the whole simulator.
 *
 *   task_explorer <workload> [options]
 *
 * Options:
 *   --scalar            run the scalar baseline instead
 *   --units N           processing units (default 4)
 *   --width W           issue width 1|2 (default 1)
 *   --ooo               out-of-order issue units
 *   --predictor P       pas | last | static (default pas)
 *   --ring-hop N        ring hop latency in cycles (default 1)
 *   --arb-entries N     ARB entries per bank (default 256)
 *   --arb-stall         stall (not squash) when the ARB fills
 *   --intra-bp          enable the per-unit bimodal branch predictor
 *   --define NAME       assemble a workload variant (repeatable)
 *   --stats             dump every machine counter
 *   --lint              validate the task annotations and exit
 *   --dot               print the task graph in Graphviz dot form
 *   --list              list available workloads
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/logging.hh"
#include "core/multiscalar_processor.hh"
#include "core/scalar_processor.hh"
#include "program/task_graph.hh"
#include "sim/runner.hh"
#include "workloads/workload.hh"

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: task_explorer <workload|--list> [options]\n"
                 "run task_explorer with no arguments for the option "
                 "summary in the file header\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace msim;

    if (argc < 2)
        return usage();
    if (std::strcmp(argv[1], "--list") == 0) {
        for (const auto &[name, factory] : workloads::registry()) {
            (void)factory;
            workloads::Workload w = workloads::get(name);
            std::printf("%-10s %s\n", name.c_str(),
                        w.description.c_str());
        }
        return 0;
    }

    RunSpec spec;
    spec.multiscalar = true;
    bool dump_stats = false;
    bool lint_only = false;
    bool dot_only = false;
    const std::string name = argv[1];

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            fatalIf(i + 1 >= argc, arg, " needs an argument");
            return argv[++i];
        };
        if (arg == "--scalar") {
            spec.multiscalar = false;
        } else if (arg == "--units") {
            spec.ms.numUnits = unsigned(std::stoul(next()));
        } else if (arg == "--width") {
            const unsigned w = unsigned(std::stoul(next()));
            spec.ms.pu.issueWidth = w;
            spec.scalar.pu.issueWidth = w;
        } else if (arg == "--ooo") {
            spec.ms.pu.outOfOrder = true;
            spec.scalar.pu.outOfOrder = true;
        } else if (arg == "--predictor") {
            spec.ms.predictor = next();
        } else if (arg == "--ring-hop") {
            spec.ms.ringHopLatency = unsigned(std::stoul(next()));
        } else if (arg == "--arb-entries") {
            spec.ms.arbEntriesPerBank = unsigned(std::stoul(next()));
        } else if (arg == "--arb-stall") {
            spec.ms.arbFullPolicy = ArbFullPolicy::kStall;
        } else if (arg == "--intra-bp") {
            spec.ms.pu.intraBranchPredict = true;
            spec.scalar.pu.intraBranchPredict = true;
        } else if (arg == "--define") {
            spec.defines.insert(next());
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--lint") {
            lint_only = true;
        } else if (arg == "--dot") {
            dot_only = true;
        } else {
            return usage();
        }
    }

    try {
        workloads::Workload w = workloads::get(name);
        // Re-run through the runner only when no stats are wanted;
        // with --stats we drive the processor directly to keep it.
        Program prog =
            assembleWorkload(w, spec.multiscalar, spec.defines);
        if (lint_only || dot_only) {
            TaskGraph graph(prog);
            if (dot_only)
                std::printf("%s", graph.toDot().c_str());
            const auto issues = graph.validate();
            for (const auto &issue : issues)
                std::fprintf(stderr, "lint: %s\n",
                             issue.message.c_str());
            if (lint_only) {
                std::printf("%zu task(s), %zu issue(s)\n",
                            graph.nodes().size(), issues.size());
            }
            return issues.empty() ? 0 : 1;
        }
        RunResult r;
        std::string stats_text;
        if (spec.multiscalar) {
            MultiscalarProcessor proc(prog, spec.ms);
            if (w.init)
                w.init(proc.memory(), prog);
            proc.setInput(w.input);
            r = proc.run(spec.maxCycles);
            stats_text = proc.stats().format();
        } else {
            ScalarProcessor proc(prog, spec.scalar);
            if (w.init)
                w.init(proc.memory(), prog);
            proc.setInput(w.input);
            r = proc.run(spec.maxCycles);
            stats_text = proc.stats().format();
        }

        std::printf("workload        %s\n", name.c_str());
        std::printf("machine         %s\n",
                    spec.multiscalar
                        ? (std::to_string(spec.ms.numUnits) + "-unit "
                           "multiscalar")
                              .c_str()
                        : "scalar");
        std::printf("output          %s", r.output.c_str());
        std::printf("golden check    %s\n",
                    r.output == w.expected ? "PASS" : "FAIL");
        std::printf("cycles          %llu\n",
                    (unsigned long long)r.cycles);
        std::printf("instructions    %llu (+%llu squashed)\n",
                    (unsigned long long)r.instructions,
                    (unsigned long long)r.squashedInstructions);
        std::printf("IPC             %.3f\n", r.ipc());
        if (spec.multiscalar) {
            std::printf("tasks           %llu retired, %llu squashed\n",
                        (unsigned long long)r.tasksRetired,
                        (unsigned long long)r.tasksSquashed);
            std::printf("prediction      %.2f%% of %llu\n",
                        100.0 * r.predAccuracy(),
                        (unsigned long long)r.taskPredictions);
            std::printf("squashes        %llu control, %llu memory, "
                        "%llu arb-full\n",
                        (unsigned long long)r.controlSquashes,
                        (unsigned long long)r.memorySquashes,
                        (unsigned long long)r.arbFullSquashes);
        }
        if (dump_stats)
            std::printf("\n%s", stats_text.c_str());
        return r.output == w.expected ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
