/**
 * @file
 * The paper's running example (Figure 3) end to end: a symbol search
 * over a linked list, where one task is one complete search. Runs the
 * scalar baseline and 2/4/8-unit multiscalar machines and reports the
 * section 3 cycle-distribution analysis — including the memory order
 * squashes that occur when two concurrent searches process the same
 * symbol (section 2.3's scenario).
 */

#include <cstdio>

#include "sim/runner.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace msim;

    workloads::Workload w = workloads::get("example");
    std::printf("workload: %s\n  %s\n\n", w.name.c_str(),
                w.description.c_str());

    RunSpec scalar_spec;
    scalar_spec.multiscalar = false;
    RunResult sr = runWorkload(w, scalar_spec);
    std::printf("%-8s %10s %8s %9s %7s %8s %8s\n", "machine",
                "cycles", "speedup", "pred", "ctlSq", "memSq",
                "useful%");
    std::printf("%-8s %10llu %8s %9s %7s %8s %8s\n", "scalar",
                (unsigned long long)sr.cycles, "1.00", "-", "-", "-",
                "-");

    for (unsigned units : {2u, 4u, 8u}) {
        RunSpec spec;
        spec.multiscalar = true;
        spec.ms.numUnits = units;
        RunResult r = runWorkload(w, spec);
        const double total = double(r.cycles) * units;
        std::printf("%-8u %10llu %8.2f %8.1f%% %7llu %8llu %7.1f%%\n",
                    units, (unsigned long long)r.cycles,
                    double(sr.cycles) / double(r.cycles),
                    100.0 * r.predAccuracy(),
                    (unsigned long long)r.controlSquashes,
                    (unsigned long long)r.memorySquashes,
                    100.0 * double(r.usefulCycles.busy) / total);
    }

    // Detailed section 3 breakdown at 8 units.
    RunSpec spec;
    spec.multiscalar = true;
    spec.ms.numUnits = 8;
    RunResult r = runWorkload(w, spec);
    const double total = double(r.cycles) * 8;
    auto pct = [&](std::uint64_t v) {
        return 100.0 * double(v) / total;
    };
    std::printf("\ncycle distribution at 8 units (section 3):\n");
    std::printf("  useful computation    %5.1f%%\n",
                pct(r.usefulCycles.busy));
    std::printf("  non-useful (squashed) %5.1f%%\n",
                pct(r.squashedCycles.total()));
    std::printf("  waiting for preds     %5.1f%%\n",
                pct(r.usefulCycles.waitPred));
    std::printf("  intra-task waits      %5.1f%%\n",
                pct(r.usefulCycles.waitIntra));
    std::printf("  fetch stalls          %5.1f%%\n",
                pct(r.usefulCycles.fetchStall));
    std::printf("  waiting to retire     %5.1f%%\n",
                pct(r.usefulCycles.waitRetire));
    std::printf("  idle (no task)        %5.1f%%\n", pct(r.idleCycles));
    return 0;
}
