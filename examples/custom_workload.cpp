/**
 * @file
 * Building your own workload: a sparse matrix-vector product where
 * one task computes one row, with host-side data initialization
 * through symbol lookup and a host golden model checking the result.
 * This is the pattern every workload in src/workloads uses; start
 * here to add your own.
 */

#include <cstdio>
#include <vector>

#include "asm/assembler.hh"
#include "common/rng.hh"
#include "core/multiscalar_processor.hh"
#include "core/scalar_processor.hh"

namespace {

constexpr unsigned kRows = 400;
constexpr unsigned kNnzPerRow = 12;

// CSR-ish fixed-degree sparse matrix: for each row, kNnzPerRow
// (column, value) pairs. y[row] = sum(val * x[col]); the checksum
// folds all y values.
const char *const kProgram = R"(
        .data
NROWS:  .word 0
XVEC:   .space 4096               # x vector (host-poked)
ENTRIES: .space 38400             # rows x 12 x {col, val}
        .text
main:
        la   $20, ENTRIES
        lw   $9, NROWS
        mul  $9, $9, 96           # 12 pairs x 8 bytes per row
        addu $21, $20, $9
        la   $22, XVEC
        li   $19, 0               # checksum
@ms     b    ROW              !s

@ms .task main
@ms .targets ROW
@ms .create $19, $20, $21, $22
@ms .endtask

@ms .task ROW
@ms .targets ROW:loop, DONE
@ms .create $19, $20
@ms .endtask
ROW:
        addu $20, $20, 96     !f  # row pointer, forwarded early
        subu $8, $20, 96          # entry cursor
        li   $9, 0                # y[row]
ROWE:
        lw   $10, 0($8)           # column index
        sll  $10, $10, 2
        addu $10, $10, $22
        lw   $10, 0($10)          # x[col]
        lw   $11, 4($8)           # value
        mul  $10, $10, $11
        addu $9, $9, $10
        addu $8, $8, 8
        bne  $8, $20, ROWE
        mul  $12, $19, 7
        addu $19, $12, $9     !f  # fold y[row] (consumed late)
        bne  $20, $21, ROW    !s

@ms .task DONE
@ms .endtask
DONE:
        move $4, $19
        li   $2, 1
        syscall                   # print the checksum
        li   $4, 10
        li   $2, 11
        syscall                   # newline
        li   $2, 10
        syscall                   # exit
)";

} // namespace

int
main()
{
    using namespace msim;

    // Generate the data and compute the golden checksum on the host.
    Rng rng(2024);
    std::vector<std::int32_t> x(1024);
    for (auto &v : x)
        v = std::int32_t(rng.range(-100, 100));
    std::vector<std::uint32_t> entries;
    for (unsigned r = 0; r < kRows; ++r) {
        for (unsigned k = 0; k < kNnzPerRow; ++k) {
            entries.push_back(std::uint32_t(rng.below(x.size())));
            entries.push_back(std::uint32_t(rng.range(-9, 9)));
        }
    }
    std::uint32_t golden_u = 0;
    for (unsigned r = 0; r < kRows; ++r) {
        std::int32_t y = 0;
        for (unsigned k = 0; k < kNnzPerRow; ++k) {
            const std::uint32_t col = entries[(r * kNnzPerRow + k) * 2];
            const auto val = std::int32_t(
                entries[(r * kNnzPerRow + k) * 2 + 1]);
            y += x[col] * val;
        }
        // Wrapping fold, exactly as the 32-bit machine computes it.
        golden_u = golden_u * 7 + std::uint32_t(y);
    }
    const auto golden = std::int32_t(golden_u);

    auto poke = [&](MainMemory &mem, const Program &prog) {
        mem.write(*prog.symbol("NROWS"), kRows, 4);
        const Addr xv = *prog.symbol("XVEC");
        for (size_t i = 0; i < x.size(); ++i)
            mem.write(xv + Addr(4 * i), std::uint32_t(x[i]), 4);
        const Addr en = *prog.symbol("ENTRIES");
        for (size_t i = 0; i < entries.size(); ++i)
            mem.write(en + Addr(4 * i), entries[i], 4);
    };

    const std::string expected = std::to_string(golden) + "\n";
    std::printf("golden checksum: %d\n", golden);

    assembler::AsmOptions sc_opts;
    sc_opts.multiscalar = false;
    Program sc_prog = assembler::assemble(kProgram, sc_opts);
    ScalarProcessor scalar(sc_prog, ScalarConfig{});
    poke(scalar.memory(), sc_prog);
    RunResult sr = scalar.run();
    std::printf("scalar : %-12s cycles=%llu %s\n",
                std::string(sr.output, 0, sr.output.find('\n')).c_str(),
                (unsigned long long)sr.cycles,
                sr.output == expected ? "PASS" : "FAIL");

    assembler::AsmOptions ms_opts;
    ms_opts.multiscalar = true;
    Program ms_prog = assembler::assemble(kProgram, ms_opts);
    MsConfig cfg;
    cfg.numUnits = 8;
    MultiscalarProcessor ms(ms_prog, cfg);
    poke(ms.memory(), ms_prog);
    RunResult mr = ms.run();
    std::printf("8-unit : %-12s cycles=%llu %s (%.2fx)\n",
                std::string(mr.output, 0, mr.output.find('\n')).c_str(),
                (unsigned long long)mr.cycles,
                mr.output == expected ? "PASS" : "FAIL",
                double(sr.cycles) / double(mr.cycles));
    return (sr.output == expected && mr.output == expected) ? 0 : 1;
}
