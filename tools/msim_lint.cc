/**
 * @file
 * msim-lint: static annotation verification for multiscalar programs.
 *
 *   msim-lint [options] <workload-or-file>...
 *   msim-lint --all
 *
 * Each positional argument names either a registered workload or a
 * path to an assembly source file (anything containing '.' or '/' is
 * treated as a path). Options:
 *
 *   --all           lint every registered workload
 *   --scalar        assemble the scalar variant (no annotations;
 *                   useful to prove the shared source still parses)
 *   --define NAME   define an assembly variant symbol (repeatable)
 *   --json          emit one JSON report per input (msim-lint-v1)
 *   --strict        exit nonzero on warnings as well as errors
 *   --quiet         suppress clean-input chatter
 *
 * Exit status: 0 when no input has errors (nor, with --strict,
 * warnings); 1 when findings gate; 2 on usage or assembly failure.
 *
 * Example diagnostic:
 *
 *   sc.ms.s:24: warning: create-mask register $19 of task MAIN
 *   reaches the stop on some path without a forward or release;
 *   successors stall until the task retires (tag the last update
 *   with !f or release the register) [missing-last-update]
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/verifier.hh"
#include "asm/assembler.hh"
#include "common/logging.hh"
#include "workloads/workload.hh"

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: msim-lint [--all] [--scalar] [--define NAME]\n"
                 "                 [--json] [--strict] [--quiet]\n"
                 "                 <workload-or-file>...\n"
                 "see the header of tools/msim_lint.cc for details\n");
    return 2;
}

struct Input
{
    std::string label;   // what to report the input as
    std::string source;  // assembly text
    std::string fileName;
};

bool
looksLikePath(const std::string &arg)
{
    return arg.find('.') != std::string::npos ||
           arg.find('/') != std::string::npos;
}

} // namespace

int
main(int argc, char **argv)
{
    bool all = false;
    bool scalar = false;
    bool json = false;
    bool strict = false;
    bool quiet = false;
    std::set<std::string> defines;
    std::vector<std::string> args;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--all") {
            all = true;
        } else if (arg == "--scalar") {
            scalar = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--strict") {
            strict = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--define") {
            if (++i >= argc)
                return usage();
            defines.insert(argv[i]);
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "msim-lint: unknown option %s\n",
                         arg.c_str());
            return usage();
        } else {
            args.push_back(arg);
        }
    }
    if (!all && args.empty())
        return usage();

    std::vector<Input> inputs;
    if (all) {
        for (const auto &[name, factory] : msim::workloads::registry()) {
            const msim::workloads::Workload w = factory(1);
            inputs.push_back(
                {name, w.source, name + (scalar ? ".sc.s" : ".ms.s")});
        }
    }
    for (const std::string &arg : args) {
        const auto &reg = msim::workloads::registry();
        auto it = reg.find(arg);
        if (it != reg.end()) {
            const msim::workloads::Workload w = it->second(1);
            inputs.push_back(
                {arg, w.source, arg + (scalar ? ".sc.s" : ".ms.s")});
            continue;
        }
        if (!looksLikePath(arg)) {
            std::fprintf(stderr,
                         "msim-lint: '%s' is neither a registered "
                         "workload nor a file path\n",
                         arg.c_str());
            return 2;
        }
        std::ifstream in(arg);
        if (!in) {
            std::fprintf(stderr, "msim-lint: cannot open %s\n",
                         arg.c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        inputs.push_back({arg, text.str(), arg});
    }

    unsigned totalErrors = 0;
    unsigned totalWarnings = 0;
    for (const Input &input : inputs) {
        msim::assembler::AsmOptions opts;
        opts.multiscalar = !scalar;
        opts.defines = defines;
        opts.fileName = input.fileName;
        msim::Program prog;
        try {
            prog = msim::assembler::assemble(input.source, opts);
        } catch (const msim::FatalError &err) {
            std::fprintf(stderr, "msim-lint: %s: assembly failed: %s\n",
                         input.label.c_str(), err.what());
            return 2;
        }

        const msim::analysis::AnnotationVerifier verifier(prog);
        const msim::analysis::AnalysisReport report = verifier.verify();
        totalErrors += report.errorCount();
        totalWarnings += report.warningCount();

        if (json) {
            std::fputs(report.toJson().c_str(), stdout);
        } else if (!report.diagnostics.empty()) {
            std::fputs(report.toText().c_str(), stdout);
        } else if (!quiet) {
            std::printf("%s: clean (%u task(s))\n", input.label.c_str(),
                        report.numTasks);
        }
    }

    if (totalErrors > 0)
        return 1;
    if (strict && totalWarnings > 0)
        return 1;
    return 0;
}
