/**
 * @file
 * msim-lint: static annotation and memory-dependence verification
 * for multiscalar programs.
 *
 *   msim-lint [options] <workload-or-file>...
 *   msim-lint --all
 *
 * Each positional argument names either a registered workload or a
 * path to an assembly source file (anything containing '.' or '/' is
 * treated as a path). Options:
 *
 *   --all           lint every registered workload
 *   --scalar        assemble the scalar variant (no annotations;
 *                   useful to prove the shared source still parses)
 *   --define NAME   define an assembly variant symbol (repeatable)
 *   --format FMT    output format: text (default) or json
 *   --json          shorthand for --format json (msim-lint-v1)
 *   --passes LIST   run only the comma-separated passes (default:
 *                   all eight; names as in the README table)
 *   --strict        exit nonzero on warnings as well as errors
 *   --quiet         suppress clean-input chatter
 *
 * Exit status: 0 when no input has errors (nor, with --strict,
 * warnings); 1 when findings gate; 2 on usage or assembly failure.
 * Info-severity findings (mem-conflict) never gate, even with
 * --strict.
 *
 * Example diagnostic:
 *
 *   sc.ms.s:24: warning: create-mask register $19 of task MAIN
 *   reaches the stop on some path without a forward or release;
 *   successors stall until the task retires (tag the last update
 *   with !f or release the register) [missing-last-update]
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/mem_dep.hh"
#include "analysis/verifier.hh"
#include "asm/assembler.hh"
#include "common/logging.hh"
#include "workloads/workload.hh"

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: msim-lint [--all] [--scalar] [--define NAME]\n"
                 "                 [--format text|json] [--json]\n"
                 "                 [--passes p1,p2,...] [--strict]\n"
                 "                 [--quiet] <workload-or-file>...\n"
                 "see the header of tools/msim_lint.cc for details\n");
    return 2;
}

struct Input
{
    std::string label;   // what to report the input as
    std::string source;  // assembly text
    std::string fileName;
};

bool
looksLikePath(const std::string &arg)
{
    return arg.find('.') != std::string::npos ||
           arg.find('/') != std::string::npos;
}

/** Parse a comma-separated pass list; nullopt on an unknown name. */
std::optional<std::set<msim::analysis::PassId>>
parsePasses(const std::string &list)
{
    std::set<msim::analysis::PassId> out;
    std::istringstream is(list);
    std::string name;
    while (std::getline(is, name, ',')) {
        if (name.empty())
            continue;
        const auto pass = msim::analysis::passByName(name);
        if (!pass) {
            std::fprintf(stderr, "msim-lint: unknown pass '%s'\n",
                         name.c_str());
            return std::nullopt;
        }
        out.insert(*pass);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bool all = false;
    bool scalar = false;
    bool json = false;
    bool strict = false;
    bool quiet = false;
    std::optional<std::set<msim::analysis::PassId>> passFilter;
    std::set<std::string> defines;
    std::vector<std::string> args;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--all") {
            all = true;
        } else if (arg == "--scalar") {
            scalar = true;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--format") {
            if (++i >= argc)
                return usage();
            const std::string fmt = argv[i];
            if (fmt == "json") {
                json = true;
            } else if (fmt == "text") {
                json = false;
            } else {
                std::fprintf(stderr,
                             "msim-lint: unknown format '%s'\n",
                             fmt.c_str());
                return usage();
            }
        } else if (arg == "--passes") {
            if (++i >= argc)
                return usage();
            passFilter = parsePasses(argv[i]);
            if (!passFilter)
                return usage();
        } else if (arg == "--strict") {
            strict = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--define") {
            if (++i >= argc)
                return usage();
            defines.insert(argv[i]);
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "msim-lint: unknown option %s\n",
                         arg.c_str());
            return usage();
        } else {
            args.push_back(arg);
        }
    }
    if (!all && args.empty())
        return usage();

    std::vector<Input> inputs;
    if (all) {
        for (const auto &[name, factory] : msim::workloads::registry()) {
            const msim::workloads::Workload w = factory(1);
            inputs.push_back(
                {name, w.source, name + (scalar ? ".sc.s" : ".ms.s")});
        }
    }
    for (const std::string &arg : args) {
        const auto &reg = msim::workloads::registry();
        auto it = reg.find(arg);
        if (it != reg.end()) {
            const msim::workloads::Workload w = it->second(1);
            inputs.push_back(
                {arg, w.source, arg + (scalar ? ".sc.s" : ".ms.s")});
            continue;
        }
        if (!looksLikePath(arg)) {
            std::fprintf(stderr,
                         "msim-lint: '%s' is neither a registered "
                         "workload nor a file path\n",
                         arg.c_str());
            return 2;
        }
        std::ifstream in(arg);
        if (!in) {
            std::fprintf(stderr, "msim-lint: cannot open %s\n",
                         arg.c_str());
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        inputs.push_back({arg, text.str(), arg});
    }

    unsigned totalErrors = 0;
    unsigned totalWarnings = 0;
    for (const Input &input : inputs) {
        msim::assembler::AsmOptions opts;
        opts.multiscalar = !scalar;
        opts.defines = defines;
        opts.fileName = input.fileName;
        msim::Program prog;
        try {
            prog = msim::assembler::assemble(input.source, opts);
        } catch (const msim::FatalError &err) {
            std::fprintf(stderr, "msim-lint: %s: assembly failed: %s\n",
                         input.label.c_str(), err.what());
            return 2;
        }

        const msim::analysis::AnnotationVerifier verifier(prog);
        msim::analysis::AnalysisReport report = verifier.verify();

        // The memory passes ride on the verifier's CFGs; merge their
        // diagnostics and stats block into the one report.
        const msim::analysis::MemDepAnalysis memdep(prog, verifier);
        msim::analysis::AnalysisReport memRep = memdep.lint();
        report.mem = memRep.mem;
        report.diagnostics.insert(
            report.diagnostics.end(),
            std::make_move_iterator(memRep.diagnostics.begin()),
            std::make_move_iterator(memRep.diagnostics.end()));

        if (passFilter) {
            std::erase_if(report.diagnostics,
                          [&](const msim::analysis::Diagnostic &d) {
                              return !passFilter->count(d.pass);
                          });
        }

        totalErrors += report.errorCount();
        totalWarnings += report.warningCount();

        if (json) {
            std::fputs(report.toJson().c_str(), stdout);
        } else if (!report.diagnostics.empty()) {
            std::fputs(report.toText().c_str(), stdout);
        } else if (!quiet) {
            std::printf("%s: clean (%u task(s))\n", input.label.c_str(),
                        report.numTasks);
        }
    }

    if (totalErrors > 0)
        return 1;
    if (strict && totalWarnings > 0)
        return 1;
    return 0;
}
