/**
 * @file
 * msim-server: the simulation-as-a-service daemon.
 *
 *   msim-server [--host A] [--port N] [--jobs N] [--queue N]
 *               [--max-cycles N] [--timeout-ms N] [--max-conns N]
 *               [--print-port]
 *
 * Binds a TCP listener (loopback by default, port 0 = ephemeral) and
 * serves msim-rpc-v1 (see DESIGN.md): assemble / run / sweep requests
 * are sharded onto a fixed worker pool behind a bounded admission
 * queue, all connections share one content-addressed program cache,
 * and sweep results stream back per cell.
 *
 * Options:
 *
 *   --host A        bind address (default 127.0.0.1)
 *   --port N        TCP port (default 0 = pick an ephemeral port)
 *   --jobs N        worker threads (default: $MSIM_JOBS or the
 *                   host's hardware concurrency)
 *   --queue N       admission queue capacity in jobs (default 256);
 *                   requests beyond it are shed with `overloaded`
 *   --max-cycles N  server-wide cap on any request's cycle budget
 *                   (default 1e9)
 *   --timeout-ms N  default wall-clock deadline per request
 *                   (default 0 = none; requests can set their own)
 *   --max-conns N   concurrent connection cap (default 64)
 *   --print-port    print only the bound port on the first stdout
 *                   line (for scripts wrapping an ephemeral port)
 *
 * SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests
 * drain to completion, new work is refused with `shutting_down`, and
 * the daemon exits 0.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/logging.hh"
#include "server/server.hh"

namespace {

std::atomic<int> g_signal{0};

void
onSignal(int sig)
{
    g_signal.store(sig);
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: msim-server [--host A] [--port N] [--jobs N]\n"
        "                   [--queue N] [--max-cycles N]\n"
        "                   [--timeout-ms N] [--max-conns N]\n"
        "                   [--print-port]\n"
        "see the header of tools/msim_server.cc for details\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    msim::server::ServerConfig config;
    bool printPort = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "msim-server: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--host") {
            config.host = value();
        } else if (arg == "--port") {
            config.port = std::uint16_t(
                std::strtoul(value(), nullptr, 10));
        } else if (arg == "--jobs" || arg == "-j") {
            config.service.jobs =
                unsigned(std::strtoul(value(), nullptr, 10));
        } else if (arg == "--queue") {
            config.service.queueCapacity =
                std::strtoul(value(), nullptr, 10);
            if (config.service.queueCapacity == 0) {
                std::fprintf(stderr,
                             "msim-server: --queue must be positive\n");
                return 2;
            }
        } else if (arg == "--max-cycles") {
            config.service.maxCyclesPerRequest =
                std::strtoull(value(), nullptr, 10);
            if (config.service.maxCyclesPerRequest == 0) {
                std::fprintf(
                    stderr,
                    "msim-server: --max-cycles must be positive\n");
                return 2;
            }
        } else if (arg == "--timeout-ms") {
            config.service.defaultTimeoutMs =
                std::strtoull(value(), nullptr, 10);
        } else if (arg == "--max-conns") {
            config.maxConnections =
                unsigned(std::strtoul(value(), nullptr, 10));
            if (config.maxConnections == 0) {
                std::fprintf(
                    stderr,
                    "msim-server: --max-conns must be positive\n");
                return 2;
            }
        } else if (arg == "--print-port") {
            printPort = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "msim-server: unknown argument %s\n",
                         arg.c_str());
            return usage();
        }
    }

    msim::server::Server server(config);
    try {
        server.start();
    } catch (const msim::FatalError &e) {
        std::fprintf(stderr, "msim-server: %s\n", e.what());
        return 1;
    }

    if (printPort) {
        std::printf("%u\n", unsigned(server.port()));
    } else {
        std::printf("msim-server listening on %s:%u "
                    "(%u workers, queue %zu)\n",
                    config.host.c_str(), unsigned(server.port()),
                    server.service().pool().threads(),
                    server.service().pool().queueCapacity());
    }
    std::fflush(stdout);

    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);

    // The signal handler only sets a flag; the main thread owns the
    // shutdown sequence so it never runs from signal context.
    while (g_signal.load() == 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::fprintf(stderr,
                 "msim-server: received %s, draining in-flight "
                 "requests\n",
                 g_signal.load() == SIGINT ? "SIGINT" : "SIGTERM");
    server.shutdown();
    std::fprintf(stderr, "msim-server: drained, exiting\n");
    return 0;
}
