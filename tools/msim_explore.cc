/**
 * @file
 * msim-explore: the machine-shape and design-space command line.
 *
 *   msim-explore <command> [options]
 *
 * Commands:
 *
 *   list                      print the shipped shape presets
 *   lint                      validate every shape in the shape dir
 *                             (parse, validate(), name==basename,
 *                             round-trip identity); exit 1 on any
 *                             failure — CI's config-lint gate
 *   show <shape>              print a shape's canonical full-form
 *                             JSON (preset name or file path)
 *   cost <shape>              print the hardware-cost proxy of a
 *                             shape (KB-equivalents)
 *   sweep                     run a design-space sweep and print the
 *       [--base SHAPE]        Pareto frontier
 *       [--units A,B,...] [--ring A,B,...] [--arb A,B,...]
 *       [--policies squash,stall] [--predictors pas,last,static]
 *       [--workloads W1,W2,...] [--jobs N] [--smoke]
 *       [--json FILE] [--pareto FILE]
 *
 * The shape directory is <repo>/shapes by default; set
 * $MSIM_SHAPE_DIR to point somewhere else.
 *
 * Exit status: 0 on success, 1 on lint/sweep failures, 2 on usage
 * errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.hh"
#include "config/cost_model.hh"
#include "config/machine_shape.hh"
#include "exp/explore.hh"

namespace {

using namespace msim;

int
usage()
{
    std::fprintf(stderr,
                 "usage: msim-explore <command> [options]\n"
                 "commands: list | lint | show <shape> | cost <shape>"
                 " | sweep\n"
                 "see the header of tools/msim_explore.cc for "
                 "details\n");
    return 2;
}

std::vector<unsigned>
parseUintList(const std::string &text, const char *flag)
{
    std::vector<unsigned> out;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::string item =
            text.substr(pos, comma == std::string::npos
                                 ? std::string::npos
                                 : comma - pos);
        char *end = nullptr;
        const unsigned long v = std::strtoul(item.c_str(), &end, 10);
        if (item.empty() || end == nullptr || *end != '\0') {
            std::fprintf(stderr,
                         "msim-explore: %s: '%s' is not a number\n",
                         flag, item.c_str());
            std::exit(2);
        }
        out.push_back(unsigned(v));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

std::vector<std::string>
parseStringList(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        const std::size_t comma = text.find(',', pos);
        out.push_back(text.substr(pos, comma == std::string::npos
                                           ? std::string::npos
                                           : comma - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

int
cmdList()
{
    const std::vector<std::string> names = config::listShapeNames();
    std::printf("%zu shapes in %s:\n", names.size(),
                config::shapeDir().c_str());
    for (const std::string &name : names) {
        const config::MachineShape &shape = config::resolveShape(name);
        if (shape.multiscalar)
            std::printf("  %-18s multiscalar  %2u units, ring %u, "
                        "arb %u/%s, pred %s  (cost %.1f)\n",
                        name.c_str(), shape.ms.numUnits,
                        shape.ms.ringHopLatency,
                        shape.ms.arbEntriesPerBank,
                        shape.ms.arbFullPolicy ==
                                ArbFullPolicy::kSquash
                            ? "squash"
                            : "stall",
                        shape.ms.predictor.c_str(),
                        config::hardwareCostProxy(shape.ms));
        else
            std::printf("  %-18s scalar       %u-way%s\n",
                        name.c_str(), shape.scalar.pu.issueWidth,
                        shape.scalar.pu.outOfOrder ? ", out-of-order"
                                                   : "");
    }
    return 0;
}

int
cmdLint()
{
    const std::vector<config::ShapeLint> lints =
        config::lintShapeDir();
    std::size_t bad = 0;
    for (const config::ShapeLint &l : lints) {
        if (l.error.empty()) {
            std::printf("  OK   %s\n", l.file.c_str());
        } else {
            std::printf("  FAIL %s: %s\n", l.file.c_str(),
                        l.error.c_str());
            ++bad;
        }
    }
    std::printf("%zu shapes, %zu failures\n", lints.size(), bad);
    if (lints.empty()) {
        std::fprintf(stderr,
                     "msim-explore: no shapes found in %s\n",
                     config::shapeDir().c_str());
        return 1;
    }
    return bad == 0 ? 0 : 1;
}

int
cmdShow(const std::string &name)
{
    const config::MachineShape &shape = config::resolveShape(name);
    std::printf("%s\n", config::shapeToJson(shape).dump().c_str());
    return 0;
}

int
cmdCost(const std::string &name)
{
    const config::MachineShape &shape = config::resolveShape(name);
    if (!shape.multiscalar) {
        std::fprintf(stderr,
                     "msim-explore: '%s' is a scalar baseline; the "
                     "cost proxy covers multiscalar shapes\n",
                     name.c_str());
        return 1;
    }
    std::printf("%.2f\n", config::hardwareCostProxy(shape.ms));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];

    try {
        if (command == "list")
            return cmdList();
        if (command == "lint")
            return cmdLint();
        if (command == "show" || command == "cost") {
            if (argc != 3)
                return usage();
            return command == "show" ? cmdShow(argv[2])
                                     : cmdCost(argv[2]);
        }
        if (command != "sweep") {
            std::fprintf(stderr,
                         "msim-explore: unknown command '%s'\n",
                         command.c_str());
            return usage();
        }

        exp::ExploreAxes axes;
        std::vector<std::string> workloads = bench::kPaperOrder;
        unsigned jobs = 0;
        bool smoke = false;
        std::string jsonPath, paretoPath;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            auto value = [&]() -> const char * {
                if (i + 1 >= argc) {
                    std::fprintf(stderr,
                                 "msim-explore: %s needs a value\n",
                                 arg.c_str());
                    std::exit(2);
                }
                return argv[++i];
            };
            if (arg == "--base") {
                axes.baseShape = value();
            } else if (arg == "--units") {
                axes.units = parseUintList(value(), "--units");
            } else if (arg == "--ring") {
                axes.ringHops = parseUintList(value(), "--ring");
            } else if (arg == "--arb") {
                axes.arbEntries = parseUintList(value(), "--arb");
            } else if (arg == "--policies") {
                axes.arbPolicies = parseStringList(value());
            } else if (arg == "--predictors") {
                axes.predictors = parseStringList(value());
            } else if (arg == "--workloads") {
                workloads = parseStringList(value());
            } else if (arg == "--jobs" || arg == "-j") {
                jobs = unsigned(std::strtoul(value(), nullptr, 10));
            } else if (arg == "--smoke") {
                smoke = true;
            } else if (arg == "--json") {
                jsonPath = value();
            } else if (arg == "--pareto") {
                paretoPath = value();
            } else {
                std::fprintf(stderr,
                             "msim-explore: unknown option '%s'\n",
                             arg.c_str());
                return usage();
            }
        }
        if (smoke) {
            const std::string base = axes.baseShape;
            axes = exp::ExploreAxes::smoke();
            axes.baseShape = base;
            workloads = bench::kSmokeOrder;
        }

        bench::BenchOptions opt;
        opt.jobs = jobs;
        opt.jsonPath = jsonPath;
        exp::Experiment experiment("msim-explore");
        exp::declareExplore(experiment, axes, workloads);
        std::printf("msim-explore: %zu points x %zu workloads over "
                    "%s\n",
                    axes.numPoints(), workloads.size(),
                    axes.baseShape.c_str());
        const exp::SweepResult sweep =
            bench::runExperiment(experiment, opt);
        const exp::ExploreReport report =
            exp::computeExplore(sweep, axes, workloads);
        exp::renderExploreReport(report);
        if (!paretoPath.empty()) {
            std::ofstream os(paretoPath);
            fatalIf(!os, "cannot open --pareto file '", paretoPath,
                    "'");
            exp::writeExploreJson(os, report);
            std::printf("wrote explore report: %s\n",
                        paretoPath.c_str());
        }
        return sweep.failures() == 0 && !report.frontier.empty() ? 0
                                                                 : 1;
    } catch (const msim::FatalError &e) {
        std::fprintf(stderr, "msim-explore: %s\n", e.what());
        return 1;
    }
}
