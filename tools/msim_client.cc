/**
 * @file
 * msim-client: command-line client for msim-server (msim-rpc-v1).
 *
 *   msim-client [--host A] --port N <command> [options]
 *
 * Commands:
 *
 *   ping                      round-trip check
 *   stats                     print the server's counters (JSON)
 *   assemble <workload>       assemble and cache a workload
 *       [--scalar] [--define NAME] [--scale N]
 *   run <workload>            run one simulation, print the result
 *       [--scalar] [--units N] [--issue-width N] [--ooo]
 *       [--predictor pas|last|static] [--define NAME] [--scale N]
 *       [--max-cycles N] [--timeout-ms N] [--machine FILE]
 *       --machine submits the msim-shape-v1 file as the request's
 *       inline "machine" object, so the server simulates exactly the
 *       declared shape (flat flags still override on top).
 *   sweep                     run the Table 2 suite as a server sweep
 *       [--smoke] [--json FILE] [--timeout-ms N] [--machine FILE]
 *       Streams each cell as it completes; --json reassembles the
 *       full msim-sweep-v1 report (cells in registration order).
 *       With --machine the sweep instead runs scalar-baseline vs the
 *       declared machine for each workload.
 *   selftest                  differential check: the same cells via
 *       [--smoke]             the server and via direct in-process
 *                             runs must be bit-identical, including
 *                             a custom inline-machine run
 *
 * Exit status: 0 on success, 1 on server/simulation errors (the
 * error frame is printed), 2 on usage errors.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/suites.hh"
#include "common/logging.hh"
#include "config/machine_shape.hh"
#include "exp/report.hh"
#include "exp/scheduler.hh"
#include "server/client.hh"
#include "server/protocol.hh"
#include "sim/runner.hh"

namespace {

using msim::json::Value;
using msim::server::Client;

int
usage()
{
    std::fprintf(
        stderr,
        "usage: msim-client [--host A] --port N <command> [options]\n"
        "commands: ping | stats | assemble <workload> | run <workload>"
        " | sweep | selftest\n"
        "see the header of tools/msim_client.cc for details\n");
    return 2;
}

/** Print a response frame; return 1 when it is an error frame. */
int
report(const Value &response)
{
    std::printf("%s\n", response.dump().c_str());
    return msim::server::isErrorFrame(response) ? 1 : 0;
}

/**
 * Structural equality, ignoring object entries named in @p ignore at
 * any depth (used to skip host-dependent wall_seconds fields).
 */
bool
jsonEqualIgnoring(const Value &a, const Value &b,
                  const std::set<std::string> &ignore)
{
    if (a.kind() != b.kind())
        return false;
    switch (a.kind()) {
      case Value::Kind::Object: {
        std::size_t ia = 0, ib = 0;
        const auto &ea = a.entries();
        const auto &eb = b.entries();
        while (true) {
            while (ia < ea.size() && ignore.count(ea[ia].first))
                ++ia;
            while (ib < eb.size() && ignore.count(eb[ib].first))
                ++ib;
            if (ia == ea.size() || ib == eb.size())
                return ia == ea.size() && ib == eb.size();
            if (ea[ia].first != eb[ib].first ||
                !jsonEqualIgnoring(ea[ia].second, eb[ib].second,
                                   ignore))
                return false;
            ++ia;
            ++ib;
        }
      }
      case Value::Kind::Array: {
        if (a.items().size() != b.items().size())
            return false;
        for (std::size_t i = 0; i < a.items().size(); ++i)
            if (!jsonEqualIgnoring(a.items()[i], b.items()[i], ignore))
                return false;
        return true;
      }
      default:
        return a.dump() == b.dump();
    }
}

/** Parse the msim-sweep-v1 cell row of a local CellResult. */
Value
localCellJson(const msim::exp::CellResult &cell)
{
    std::ostringstream os;
    msim::exp::writeJsonCell(os, cell, "");
    return Value::parse(os.str());
}

/** The Table 2 experiment the sweep/selftest commands run. */
msim::exp::Experiment
table2Experiment(bool smoke)
{
    msim::exp::Experiment e(smoke ? "msim-client-sweep-smoke"
                                  : "msim-client-sweep");
    msim::bench::declareTable2(e, smoke ? msim::bench::kSmokeOrder
                                        : msim::bench::kPaperOrder);
    return e;
}

/** The --machine sweep: scalar baseline vs the declared shape. */
msim::exp::Experiment
machineExperiment(const std::string &machineFile, bool smoke)
{
    msim::exp::Experiment e(smoke ? "msim-client-machine-smoke"
                                  : "msim-client-machine");
    const msim::RunSpec custom =
        msim::config::specForShape(machineFile);
    for (const std::string &name : smoke ? msim::bench::kSmokeOrder
                                         : msim::bench::kPaperOrder) {
        e.addShape("machine/" + name + "/scalar", name, "scalar-1w");
        e.add("machine/" + name + "/custom", name, custom);
    }
    return e;
}

/**
 * Embed @p machine as the "machine" object of every named cell's spec
 * in a sweep request, so the server parses the declarative shape
 * through the same src/config path a local run uses.
 */
void
attachMachineToCells(Value &request, const Value &machine,
                     const std::string &nameSuffix)
{
    Value *cells = request.find("cells");
    for (Value &cell : cells->items()) {
        const Value *name = cell.find("name");
        const std::string &n = name->asString();
        if (n.size() >= nameSuffix.size() &&
            n.compare(n.size() - nameSuffix.size(), nameSuffix.size(),
                      nameSuffix) == 0)
            cell.find("spec")->set("machine", machine);
    }
}

int
cmdSweep(Client &client, bool smoke, const std::string &jsonPath,
         std::uint64_t timeoutMs, const std::string &machineFile)
{
    const msim::exp::Experiment e =
        machineFile.empty() ? table2Experiment(smoke)
                            : machineExperiment(machineFile, smoke);
    Value request =
        msim::server::makeSweepRequest(e.cells(), 1, timeoutMs);
    if (!machineFile.empty()) {
        const msim::config::MachineShape shape =
            msim::config::loadShapeFile(machineFile);
        attachMachineToCells(request,
                             msim::config::shapeToJson(shape),
                             "/custom");
    }

    std::printf("sweep: %zu cells\n", e.cells().size());
    const Client::SweepOutcome outcome = client.sweep(
        request, [](const Client::StreamedCell &cell) {
            const Value *name = cell.cell.find("name");
            const Value *ok = cell.cell.find("ok");
            const Value *cycles = cell.cell.find("cycles");
            std::printf(
                "  cell %-40s %s  %lld cycles\n",
                name != nullptr ? name->asString().c_str() : "?",
                ok != nullptr && ok->asBool() ? "ok " : "FAIL",
                cycles != nullptr ? (long long)cycles->asInt() : 0);
            std::fflush(stdout);
        });

    const Value *failed = outcome.done.find("cells_failed");
    const Value *wall = outcome.done.find("wall_seconds");
    std::printf("sweep done: %zu cells, %lld failed, %.2fs\n",
                outcome.cells.size(),
                failed != nullptr ? (long long)failed->asInt() : -1,
                wall != nullptr ? wall->asDouble() : 0.0);

    if (!jsonPath.empty()) {
        // Reassemble a full msim-sweep-v1 document from the stream
        // (cells are already back in registration order).
        Value doc = Value::object();
        doc.set("schema", Value("msim-sweep-v1"));
        doc.set("experiment", Value(e.name()));
        const Value stats = client.call(
            msim::server::makeResponse("stats", 2));
        const Value *sv = stats.find("stats");
        const Value *workers =
            sv != nullptr ? sv->find("workers") : nullptr;
        doc.set("jobs", workers != nullptr ? *workers : Value(0));
        doc.set("wall_seconds",
                wall != nullptr ? *wall : Value(0.0));
        doc.set("cells_total", Value(outcome.cells.size()));
        doc.set("cells_failed",
                failed != nullptr ? *failed : Value(0));
        const Value *cache = outcome.done.find("program_cache");
        doc.set("program_cache",
                cache != nullptr ? *cache : Value::object());
        Value cells = Value::array();
        for (const Client::StreamedCell &cell : outcome.cells)
            cells.push(cell.cell);
        doc.set("cells", std::move(cells));

        std::FILE *f = std::fopen(jsonPath.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr,
                         "msim-client: cannot open --json file %s\n",
                         jsonPath.c_str());
            return 1;
        }
        const std::string text = doc.dump();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote JSON report: %s\n", jsonPath.c_str());
    }
    return failed != nullptr && failed->asInt() == 0 ? 0 : 1;
}

int
cmdSelftest(Client &client, bool smoke)
{
    int rc = 0;

    // Single runs: the server's "result" object must match a direct
    // in-process runCompiled byte for byte.
    msim::ProgramCache cache;
    for (const bool multiscalar : {false, true}) {
        msim::RunSpec spec;
        spec.multiscalar = multiscalar;
        if (multiscalar)
            spec.ms.numUnits = 4;
        const Value response = client.call(
            msim::server::makeRunRequest("example", spec, 1, 7));
        if (msim::server::isErrorFrame(response)) {
            std::fprintf(stderr, "selftest: run failed: %s\n",
                         response.dump().c_str());
            return 1;
        }
        auto compiled =
            cache.get("example", multiscalar, spec.defines, 1);
        const msim::RunResult local =
            msim::runCompiled(*compiled, spec);
        const Value *remote = response.find("result");
        const std::string localDump =
            msim::server::resultToJson(local).dump();
        if (remote == nullptr || remote->dump() != localDump) {
            std::fprintf(
                stderr,
                "selftest: MISMATCH on example (%s)\n  server: %s\n"
                "  local:  %s\n",
                multiscalar ? "multiscalar" : "scalar",
                remote != nullptr ? remote->dump().c_str() : "absent",
                localDump.c_str());
            rc = 1;
        } else {
            std::printf("selftest: run example (%s) identical\n",
                        multiscalar ? "multiscalar" : "scalar");
        }
    }

    // Inline machine: a custom shape no preset covers (6 units,
    // 2-cycle ring hops, 32-entry stalling ARB, last-target
    // predictor), submitted as the request's "machine" object, must
    // produce the same bytes as running the identical shape
    // in-process. This proves the server's src/config path and the
    // local one are the same code.
    {
        msim::config::MachineShape shape;
        shape.multiscalar = true;
        shape.ms.numUnits = 6;
        shape.ms.ringHopLatency = 2;
        shape.ms.arbEntriesPerBank = 32;
        shape.ms.arbFullPolicy = msim::ArbFullPolicy::kStall;
        shape.ms.predictor = "last";
        const msim::RunSpec spec = msim::config::toRunSpec(shape);

        Value request =
            msim::server::makeRunRequest("example", spec, 1, 9);
        request.find("spec")->set(
            "machine", msim::config::shapeToJson(shape));
        const Value response = client.call(request);
        if (msim::server::isErrorFrame(response)) {
            std::fprintf(stderr,
                         "selftest: machine run failed: %s\n",
                         response.dump().c_str());
            return 1;
        }
        auto compiled = cache.get("example", true, spec.defines, 1);
        const msim::RunResult local =
            msim::runCompiled(*compiled, spec);
        const Value *remote = response.find("result");
        const std::string localDump =
            msim::server::resultToJson(local).dump();
        if (remote == nullptr || remote->dump() != localDump) {
            std::fprintf(
                stderr,
                "selftest: MISMATCH on example (inline machine)\n"
                "  server: %s\n  local:  %s\n",
                remote != nullptr ? remote->dump().c_str() : "absent",
                localDump.c_str());
            rc = 1;
        } else {
            std::printf("selftest: run example (inline machine) "
                        "identical\n");
        }
    }

    // L2-enabled inline machine: the shared L2 (exclusive policy, to
    // exercise the least-trodden paths) over a cache-stress workload
    // must also round-trip bit for bit — the server builds the same
    // hierarchy the local library does.
    {
        msim::config::MachineShape shape;
        shape.multiscalar = true;
        shape.ms.l2.emplace();
        shape.ms.l2->sizeBytes = 256 * 1024;
        shape.ms.l2->inclusion = msim::L2Inclusion::kExclusive;
        const msim::RunSpec spec = msim::config::toRunSpec(shape);

        Value request = msim::server::makeRunRequest("pointer_chase",
                                                     spec, 1, 11);
        request.find("spec")->set(
            "machine", msim::config::shapeToJson(shape));
        const Value response = client.call(request);
        if (msim::server::isErrorFrame(response)) {
            std::fprintf(stderr,
                         "selftest: L2 machine run failed: %s\n",
                         response.dump().c_str());
            return 1;
        }
        auto compiled =
            cache.get("pointer_chase", true, spec.defines, 1);
        const msim::RunResult local =
            msim::runCompiled(*compiled, spec);
        const Value *remote = response.find("result");
        const std::string localDump =
            msim::server::resultToJson(local).dump();
        if (remote == nullptr || remote->dump() != localDump) {
            std::fprintf(
                stderr,
                "selftest: MISMATCH on pointer_chase (L2 machine)\n"
                "  server: %s\n  local:  %s\n",
                remote != nullptr ? remote->dump().c_str() : "absent",
                localDump.c_str());
            rc = 1;
        } else {
            std::printf("selftest: run pointer_chase (L2 machine) "
                        "identical\n");
        }
    }

    // Sweep: every streamed cell row must match the same cell run by
    // the in-process SweepScheduler (wall clock aside).
    const msim::exp::Experiment e = table2Experiment(smoke);
    const Client::SweepOutcome outcome =
        client.sweep(msim::server::makeSweepRequest(e.cells(), 8));
    msim::exp::SweepScheduler scheduler;
    const msim::exp::SweepResult local = scheduler.run(e);
    if (outcome.cells.size() != local.cells.size()) {
        std::fprintf(stderr,
                     "selftest: cell count mismatch (%zu vs %zu)\n",
                     outcome.cells.size(), local.cells.size());
        return 1;
    }
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < local.cells.size(); ++i) {
        const Value localCell = localCellJson(local.cells[i]);
        if (!jsonEqualIgnoring(outcome.cells[i].cell, localCell,
                               {"wall_seconds"})) {
            std::fprintf(stderr,
                         "selftest: MISMATCH in cell %s\n  server: "
                         "%s\n  local:  %s\n",
                         local.cells[i].name.c_str(),
                         outcome.cells[i].cell.dump().c_str(),
                         localCell.dump().c_str());
            ++mismatches;
        }
    }
    if (mismatches == 0)
        std::printf("selftest: sweep of %zu cells identical\n",
                    local.cells.size());
    else
        rc = 1;
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string host = "127.0.0.1";
    unsigned port = 0;
    std::string command;
    std::string workload;
    bool smoke = false;
    bool multiscalar = true;
    bool outOfOrder = false;
    unsigned units = 0;
    unsigned issueWidth = 0;
    unsigned scale = 1;
    std::string predictor;
    std::string jsonPath;
    std::string machineFile;
    std::set<std::string> defines;
    std::uint64_t maxCycles = 0;
    std::uint64_t timeoutMs = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "msim-client: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--host") {
            host = value();
        } else if (arg == "--port") {
            port = unsigned(std::strtoul(value(), nullptr, 10));
        } else if (arg == "--scalar") {
            multiscalar = false;
        } else if (arg == "--ooo") {
            outOfOrder = true;
        } else if (arg == "--units") {
            units = unsigned(std::strtoul(value(), nullptr, 10));
        } else if (arg == "--issue-width") {
            issueWidth = unsigned(std::strtoul(value(), nullptr, 10));
        } else if (arg == "--scale") {
            scale = unsigned(std::strtoul(value(), nullptr, 10));
        } else if (arg == "--predictor") {
            predictor = value();
        } else if (arg == "--define") {
            defines.insert(value());
        } else if (arg == "--max-cycles") {
            maxCycles = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--timeout-ms") {
            timeoutMs = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--json") {
            jsonPath = value();
        } else if (arg == "--machine") {
            machineFile = value();
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "msim-client: unknown option %s\n",
                         arg.c_str());
            return usage();
        } else if (command.empty()) {
            command = arg;
        } else if (workload.empty()) {
            workload = arg;
        } else {
            return usage();
        }
    }
    if (command.empty() || port == 0 || port > 65535)
        return usage();

    try {
        Client client;
        client.connect(host, std::uint16_t(port));

        if (command == "ping")
            return report(
                client.call(msim::server::makeResponse("ping", 1)));
        if (command == "stats")
            return report(
                client.call(msim::server::makeResponse("stats", 1)));

        if (command == "assemble") {
            if (workload.empty())
                return usage();
            msim::server::AssembleRequest req;
            req.workload = workload;
            req.multiscalar = multiscalar;
            req.defines = defines;
            req.scale = scale;
            return report(client.call(
                msim::server::makeAssembleRequest(req, 1)));
        }

        if (command == "run") {
            if (workload.empty())
                return usage();
            msim::RunSpec spec;
            if (!machineFile.empty()) {
                // The shape is both validated locally (clear errors
                // before any network round trip) and embedded in the
                // request as the inline "machine" object below.
                spec = msim::config::specForShape(machineFile);
            } else {
                spec.multiscalar = multiscalar;
            }
            spec.defines = defines;
            if (spec.multiscalar) {
                if (units != 0)
                    spec.ms.numUnits = units;
                if (issueWidth != 0)
                    spec.ms.pu.issueWidth = issueWidth;
                if (outOfOrder)
                    spec.ms.pu.outOfOrder = true;
                if (!predictor.empty())
                    spec.ms.predictor = predictor;
            } else {
                if (issueWidth != 0)
                    spec.scalar.pu.issueWidth = issueWidth;
                if (outOfOrder)
                    spec.scalar.pu.outOfOrder = true;
            }
            if (maxCycles != 0)
                spec.maxCycles = maxCycles;
            Value request = msim::server::makeRunRequest(
                workload, spec, scale, 1, timeoutMs);
            if (!machineFile.empty())
                request.find("spec")->set(
                    "machine",
                    msim::config::shapeToJson(
                        msim::config::loadShapeFile(machineFile)));
            return report(client.call(request));
        }

        if (command == "sweep")
            return cmdSweep(client, smoke, jsonPath, timeoutMs,
                            machineFile);
        if (command == "selftest")
            return cmdSelftest(client, smoke);

        std::fprintf(stderr, "msim-client: unknown command '%s'\n",
                     command.c_str());
        return usage();
    } catch (const msim::FatalError &e) {
        std::fprintf(stderr, "msim-client: %s\n", e.what());
        return 1;
    }
}
