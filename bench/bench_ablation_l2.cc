/**
 * @file
 * Ablation: the shared L2 hierarchy. Sweeps the L2 design space —
 * capacity (64 KB / 256 KB / 1 MB), associativity (direct-mapped vs
 * 8-way), non-blocking depth (1 vs 8 MSHRs per bank), and inclusion
 * policy (NINE / inclusive / exclusive) — over the cache-stress
 * workload family, under both the fast (10-cycle first beat) and
 * slow (100-cycle) memory bus. The "off" column is the default
 * L2-less 4-unit machine, so every number is the latency-tolerance
 * benefit the L2 buys at that design point.
 */

#include "bench/suites.hh"

int
main(int argc, char **argv)
{
    using namespace msim::bench;
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--smoke")
            smoke = true;
    return benchMain(
        argc, argv, "l2", [smoke](auto &e) { declareL2(e, smoke); },
        [smoke](const auto &r) { reportL2(r, smoke); });
}
