/**
 * @file
 * Shared infrastructure for the benchmark binaries.
 *
 * Every table and figure of the paper's evaluation (section 5) has
 * one binary here. Each (workload, configuration) cell is registered
 * as a google-benchmark with a single iteration — a cell is a full
 * program simulation, so statistical repetition adds nothing — and
 * the results are cached so a paper-style table can be printed after
 * the run. Counters attached to each benchmark (IPC, speedup,
 * prediction accuracy, squashes) also appear in google-benchmark's
 * own report, including its JSON output.
 */

#ifndef MSIM_BENCH_BENCH_COMMON_HH
#define MSIM_BENCH_BENCH_COMMON_HH

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "workloads/workload.hh"

namespace msim::bench {

/** The paper's benchmark order (Tables 2-4). */
inline const std::vector<std::string> kPaperOrder = {
    "compress", "eqntott", "espresso", "gcc", "sc",
    "xlisp", "tomcatv", "cmp", "wc", "example",
};

/** Cache of run results keyed by an arbitrary cell name. */
class ResultCache
{
  public:
    RunResult &
    operator[](const std::string &key)
    {
        return results_[key];
    }

    bool
    has(const std::string &key) const
    {
        return results_.count(key) > 0;
    }

    const RunResult &
    at(const std::string &key) const
    {
        return results_.at(key);
    }

  private:
    std::map<std::string, RunResult> results_;
};

inline ResultCache &
cache()
{
    static ResultCache c;
    return c;
}

/** Run one cell and attach its headline numbers as counters. */
inline void
runCell(benchmark::State &state, const std::string &key,
        const workloads::Workload &workload, const RunSpec &spec)
{
    RunResult result;
    for (auto _ : state) {
        result = runWorkload(workload, spec);
    }
    cache()[key] = result;
    state.counters["sim_cycles"] = double(result.cycles);
    state.counters["instructions"] = double(result.instructions);
    state.counters["IPC"] = result.ipc();
    state.counters["pred_acc"] = result.predAccuracy();
    state.counters["squashes"] =
        double(result.controlSquashes + result.memorySquashes +
               result.arbFullSquashes);
}

/**
 * Register one benchmark cell.
 *
 * @param key Unique cell name (also the google-benchmark name).
 * @param workload_name Workload to run.
 * @param spec Machine configuration.
 */
inline void
registerCell(const std::string &key, const std::string &workload_name,
             const RunSpec &spec)
{
    benchmark::RegisterBenchmark(
        key.c_str(),
        [key, workload_name, spec](benchmark::State &state) {
            workloads::Workload w = workloads::get(workload_name);
            runCell(state, key, w, spec);
        })
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
}

/** Standard main: run benchmarks, then print the paper-style table. */
inline int
benchMain(int argc, char **argv, const std::function<void()> &reg,
          const std::function<void()> &report)
{
    benchmark::Initialize(&argc, argv);
    reg();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    report();
    return 0;
}

} // namespace msim::bench

#endif // MSIM_BENCH_BENCH_COMMON_HH
