/**
 * @file
 * Shared harness for the benchmark binaries, built on the experiment
 * engine (src/exp).
 *
 * Every table and figure of the paper's evaluation (section 5) has
 * one binary here. A binary declares its cells into an Experiment,
 * the SweepScheduler runs them on a worker pool (--jobs N /
 * MSIM_JOBS), and the report callback renders the paper-style table
 * from the deterministic SweepResult. Results are identical whatever
 * the job count; --json FILE additionally emits the msim-sweep-v1
 * machine-readable report.
 *
 * Per-cell failures are captured, not fatal: a failing cell keeps a
 * well-formed row (ok:false + error) in the JSON report and is
 * listed in the run summary; paper tables that need the failed
 * number report the error instead of aborting the whole sweep.
 */

#ifndef MSIM_BENCH_BENCH_COMMON_HH
#define MSIM_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "exp/experiment.hh"
#include "exp/report.hh"
#include "exp/scheduler.hh"

namespace msim::bench {

/** The paper's benchmark order (Tables 2-4). */
inline const std::vector<std::string> kPaperOrder = {
    "compress", "eqntott", "espresso", "gcc", "sc",
    "xlisp", "tomcatv", "cmp", "wc", "example",
};

/** Reduced workload set for CI smoke runs (--smoke). */
inline const std::vector<std::string> kSmokeOrder = {
    "example", "wc", "cmp",
};

/** Command line options shared by every bench binary. */
struct BenchOptions
{
    /** Worker threads (0 = MSIM_JOBS or hardware concurrency). */
    unsigned jobs = 0;
    /** When non-empty, write the msim-sweep-v1 JSON report here. */
    std::string jsonPath;
    /** Run the reduced smoke cell set (bench_paper). */
    bool smoke = false;
};

inline void
printUsage(const char *argv0)
{
    std::printf(
        "usage: %s [--jobs N] [--json FILE] [--smoke]\n"
        "  --jobs N    worker threads (default: $MSIM_JOBS or the\n"
        "              host's hardware concurrency); results are\n"
        "              identical for every N\n"
        "  --json FILE write the msim-sweep-v1 JSON report to FILE\n"
        "  --smoke     reduced cell set (CI smoke)\n",
        argv0);
}

/** Parse the shared flags; exits on bad usage. */
inline BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--jobs" || arg == "-j") {
            opt.jobs = unsigned(std::strtoul(value(), nullptr, 10));
            if (opt.jobs == 0) {
                std::fprintf(stderr, "--jobs must be positive\n");
                std::exit(2);
            }
        } else if (arg == "--json") {
            opt.jsonPath = value();
        } else if (arg == "--smoke") {
            opt.smoke = true;
        } else if (arg == "--help" || arg == "-h") {
            printUsage(argv[0]);
            std::exit(0);
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            printUsage(argv[0]);
            std::exit(2);
        }
    }
    return opt;
}

/**
 * Execute @p experiment and print the run summary (cells, jobs, wall
 * time, assemblies, failures). Also asserts the sweep's memoization
 * invariant: the program cache compiled each distinct (workload,
 * mode, defines, scale) point exactly once.
 */
inline exp::SweepResult
runExperiment(const exp::Experiment &experiment,
              const BenchOptions &opt)
{
    exp::SweepScheduler scheduler(opt.jobs);
    exp::SweepResult sweep = scheduler.run(experiment);

    std::printf("%s: %zu cells on %u job%s in %.2fs "
                "(%llu assemblies, %llu cache hits)\n",
                experiment.name().c_str(), sweep.cells.size(),
                sweep.jobs, sweep.jobs == 1 ? "" : "s",
                sweep.wallSeconds,
                (unsigned long long)sweep.cacheMisses,
                (unsigned long long)sweep.cacheHits);

    // Memoization invariant: one assembly per distinct compile key,
    // one cache lookup per cell.
    panicIf(sweep.cacheMisses != experiment.uniqueCompileKeys(),
            "program cache assembled ", sweep.cacheMisses,
            " times but the experiment has ",
            experiment.uniqueCompileKeys(), " distinct compile keys");
    panicIf(sweep.cacheHits + sweep.cacheMisses != sweep.cells.size(),
            "program cache lookups (", sweep.cacheHits, " + ",
            sweep.cacheMisses, ") != cells (", sweep.cells.size(),
            ")");

    for (const exp::CellResult &c : sweep.cells) {
        if (!c.ok)
            std::fprintf(stderr, "FAILED cell %s (%.2fs): %s\n",
                         c.name.c_str(), c.wallSeconds,
                         c.error.c_str());
    }
    if (!opt.jsonPath.empty()) {
        std::ofstream os(opt.jsonPath);
        fatalIf(!os, "cannot open --json file '", opt.jsonPath, "'");
        exp::writeJsonReport(os, sweep);
        std::printf("wrote JSON report: %s\n", opt.jsonPath.c_str());
    }
    return sweep;
}

/**
 * Standard main: parse flags, declare cells, run the sweep, render
 * the paper-style report. Returns non-zero when any cell failed.
 */
inline int
benchMain(int argc, char **argv, const std::string &name,
          const std::function<void(exp::Experiment &)> &declare,
          const std::function<void(const exp::SweepResult &)> &report)
{
    const BenchOptions opt = parseArgs(argc, argv);
    exp::Experiment experiment(name);
    declare(experiment);
    const exp::SweepResult sweep = runExperiment(experiment, opt);
    try {
        report(sweep);
    } catch (const std::exception &e) {
        // A failed cell makes its table unrenderable; the summary
        // and JSON report above already carry the details.
        std::fprintf(stderr, "report incomplete: %s\n", e.what());
        return 1;
    }
    return sweep.failures() == 0 ? 0 : 1;
}

} // namespace msim::bench

#endif // MSIM_BENCH_BENCH_COMMON_HH
