/**
 * @file
 * Ablation: ring communication latency. The paper's ring imposes one
 * cycle per hop between adjacent units (section 5.1); this bench
 * sweeps 1-4 cycles per hop on register-communication-heavy
 * workloads to show how inter-task register traffic tolerates (or
 * does not tolerate) slower forwarding.
 */

#include "bench/suites.hh"

int
main(int argc, char **argv)
{
    using namespace msim::bench;
    return benchMain(
        argc, argv, "ring", [](auto &e) { declareRing(e); },
        [](const auto &r) { reportRing(r); });
}
