/**
 * @file
 * Ablation: ring communication latency. The paper's ring imposes one
 * cycle per hop between adjacent units (section 5.1); this bench
 * sweeps 1-4 cycles per hop on register-communication-heavy
 * workloads to show how inter-task register traffic tolerates (or
 * does not tolerate) slower forwarding.
 */

#include "bench/bench_common.hh"

namespace {

using namespace msim;
using namespace msim::bench;

const std::vector<std::string> kBenches = {"wc", "eqntott", "compress",
                                           "example"};
const std::vector<unsigned> kHops = {1, 2, 3, 4};

void
registerAll()
{
    for (const std::string &name : kBenches) {
        RunSpec scalar;
        scalar.multiscalar = false;
        registerCell("ring/" + name + "/scalar", name, scalar);
        for (unsigned h : kHops) {
            RunSpec ms;
            ms.multiscalar = true;
            ms.ms.numUnits = 8;
            ms.ms.ringHopLatency = h;
            registerCell("ring/" + name + "/hop" + std::to_string(h),
                         name, ms);
        }
    }
}

void
report()
{
    std::printf("\nAblation: ring hop latency "
                "(8-unit, 1-way, in-order; speedup over scalar)\n");
    std::printf("%-10s", "Program");
    for (unsigned h : kHops)
        std::printf(" %6uc", h);
    std::printf("\n");
    for (const std::string &name : kBenches) {
        const auto &sc = cache().at("ring/" + name + "/scalar");
        std::printf("%-10s", name.c_str());
        for (unsigned h : kHops) {
            const auto &ms = cache().at("ring/" + name + "/hop" +
                                        std::to_string(h));
            std::printf(" %7.2f",
                        double(sc.cycles) / double(ms.cycles));
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    return msim::bench::benchMain(argc, argv, registerAll, report);
}
