/**
 * @file
 * Ablation: the sequencer's control flow predictor. The paper's
 * configuration is a PAs two-level predictor with a return address
 * stack (section 5.1); this bench compares it against a last-target
 * predictor and a static predict-target-0 policy on the 8-unit
 * machine, reporting prediction accuracy and speedup over scalar.
 */

#include "bench/bench_common.hh"

namespace {

using namespace msim;
using namespace msim::bench;

const std::vector<std::string> kPredictors = {"pas", "last", "static"};

void
registerAll()
{
    for (const std::string &name : kPaperOrder) {
        RunSpec scalar;
        scalar.multiscalar = false;
        registerCell("pred/" + name + "/scalar", name, scalar);
        for (const std::string &p : kPredictors) {
            RunSpec ms;
            ms.multiscalar = true;
            ms.ms.numUnits = 8;
            ms.ms.predictor = p;
            registerCell("pred/" + name + "/" + p, name, ms);
        }
    }
}

void
report()
{
    std::printf("\nAblation: task predictor (8-unit, 1-way, in-order)\n");
    std::printf("%-10s", "Program");
    for (const auto &p : kPredictors)
        std::printf(" | %7s: %6s %6s", p.c_str(), "spd", "acc");
    std::printf("\n");
    for (const std::string &name : kPaperOrder) {
        const auto &sc = cache().at("pred/" + name + "/scalar");
        std::printf("%-10s", name.c_str());
        for (const auto &p : kPredictors) {
            const auto &ms = cache().at("pred/" + name + "/" + p);
            std::printf(" | %7s  %6.2f %5.1f%%", "",
                        double(sc.cycles) / double(ms.cycles),
                        100.0 * ms.predAccuracy());
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    return msim::bench::benchMain(argc, argv, registerAll, report);
}
