/**
 * @file
 * Ablation: the sequencer's control flow predictor. The paper's
 * configuration is a PAs two-level predictor with a return address
 * stack (section 5.1); this bench compares it against a last-target
 * predictor and a static predict-target-0 policy on the 8-unit
 * machine, reporting prediction accuracy and speedup over scalar.
 */

#include "bench/suites.hh"

int
main(int argc, char **argv)
{
    using namespace msim::bench;
    return benchMain(
        argc, argv, "pred", [](auto &e) { declarePredictor(e); },
        [](const auto &r) { reportPredictor(r); });
}
