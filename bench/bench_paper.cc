/**
 * @file
 * The whole evaluation in one command: Tables 2-4, the section 3
 * cycle breakdown, and every ablation, declared into a single
 * experiment and executed by the parallel sweep scheduler. With
 * --json FILE the combined msim-sweep-v1 report covers every cell of
 * the paper's evaluation; --jobs N picks the worker count (results
 * are bit-identical for every N).
 *
 * --smoke shrinks the grid to three fast workloads (example, wc,
 * cmp) and skips the paper-table rendering — CI uses it to exercise
 * the full parallel sweep path on every push in seconds.
 */

#include "bench/suites.hh"

namespace {

using namespace msim;
using namespace msim::bench;

/** The suite's fixed sets restricted to the smoke workloads. */
std::vector<std::string>
intersect(const std::vector<std::string> &set,
          const std::vector<std::string> &allowed)
{
    std::vector<std::string> out;
    for (const std::string &name : set)
        if (std::find(allowed.begin(), allowed.end(), name) !=
            allowed.end())
            out.push_back(name);
    return out;
}

void
declarePaper(exp::Experiment &e, bool smoke)
{
    const std::vector<std::string> &names =
        smoke ? kSmokeOrder : kPaperOrder;
    declareTable2(e, names);
    declareTable34(e, "table3", false, names);
    declareTable34(e, "table4", true, names);
    declareBreakdown(e, names);
    declarePredictor(e, names);
    declareUnits(e, names);
    declareRing(e, smoke ? intersect(kRingBenches, names)
                         : kRingBenches);
    declareArb(e, smoke ? intersect(kArbBenches, names)
                        : kArbBenches);
    declareIntraBp(e, names);
    // The software ablation names fixed (workload, define) cells
    // outside the smoke set; full runs only.
    if (!smoke)
        declareSoftware(e);
}

void
reportPaper(const exp::SweepResult &r, bool smoke)
{
    if (smoke) {
        std::printf("smoke sweep only — paper tables need the full "
                    "workload grid\n");
        return;
    }
    reportTable2(r);
    reportTable34(r, "table3",
                  "Table 3: In-Order Issue Processing Units");
    reportTable34(r, "table4",
                  "Table 4: Out-Of-Order Issue Processing Units");
    reportBreakdown(r);
    reportPredictor(r);
    reportUnits(r);
    reportRing(r);
    reportArb(r);
    reportIntraBp(r);
    reportSoftware(r);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchOptions opt = parseArgs(argc, argv);
    exp::Experiment experiment(opt.smoke ? "paper-smoke" : "paper");
    declarePaper(experiment, opt.smoke);
    const exp::SweepResult sweep = runExperiment(experiment, opt);
    try {
        reportPaper(sweep, opt.smoke);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "report incomplete: %s\n", e.what());
        return 1;
    }
    return sweep.failures() == 0 ? 0 : 1;
}
