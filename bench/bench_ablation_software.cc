/**
 * @file
 * Ablation: the paper's software-side techniques, each toggled via
 * the one-source/two-variants mechanism:
 *
 *  - dead register analysis (section 2.2): the example workload with
 *    the conservative Figure 4 mask {$4,$8,$17,$20,$23} plus
 *    explicit releases (the default) vs the minimal create mask
 *    {$20} after dead-register analysis (define OPTMASK);
 *
 *  - work-list restructuring for load balance (section 3.2.3 and the
 *    sc discussion in 5.3): sc's restructured work-list loop vs the
 *    original loop over all (mostly empty) cells (define SCGRID);
 *
 *  - synchronization of data communication (section 3.1.1): gcc with
 *    its hot global carried in a forwarded register (define SYNC)
 *    instead of loaded early from memory — memory order squashes all
 *    but disappear, traded for an inter-task register dependence;
 *
 *  - early validation of prediction (section 3.1.2): wc restructured
 *    to test the loop exit at the top of the task (define EARLYV), so
 *    the mispredicted extra iteration squashes within cycles instead
 *    of after a full chunk scan.
 */

#include "bench/bench_common.hh"

namespace {

using namespace msim;
using namespace msim::bench;

void
registerAll()
{
    // Dead register analysis on the example workload.
    RunSpec scalar;
    scalar.multiscalar = false;
    registerCell("sw/example/scalar", "example", scalar);
    RunSpec cons;
    cons.multiscalar = true;
    cons.ms.numUnits = 8;
    registerCell("sw/example/consmask", "example", cons);
    RunSpec opt = cons;
    opt.defines = {"OPTMASK"};
    registerCell("sw/example/deadreg", "example", opt);

    // Work-list restructuring on sc.
    registerCell("sw/sc/scalar", "sc", scalar);
    RunSpec wl;
    wl.multiscalar = true;
    wl.ms.numUnits = 8;
    registerCell("sw/sc/worklist", "sc", wl);

    // Synchronization of data communication on gcc.
    registerCell("sw/gcc/scalar", "gcc", scalar);
    RunSpec plain;
    plain.multiscalar = true;
    plain.ms.numUnits = 8;
    registerCell("sw/gcc/squashing", "gcc", plain);
    RunSpec sync = plain;
    sync.defines = {"SYNC"};
    registerCell("sw/gcc/synchronized", "gcc", sync);

    // Early prediction validation on wc.
    registerCell("sw/wc/scalar", "wc", scalar);
    registerCell("sw/wc/bottomtest", "wc", plain);
    RunSpec earlyv = plain;
    earlyv.defines = {"EARLYV"};
    registerCell("sw/wc/earlyvalidate", "wc", earlyv);

    RunSpec grid = wl;
    grid.defines = {"SCGRID"};
    registerCell("sw/sc/grid", "sc", grid);
}

void
report()
{
    const auto &exsc = cache().at("sw/example/scalar");
    const auto &dead = cache().at("sw/example/deadreg");
    const auto &cons = cache().at("sw/example/consmask");
    std::printf("\nAblation: dead register analysis "
                "(example, 8-unit; section 2.2)\n");
    std::printf("  %-28s speedup %5.2f   instructions %llu\n",
                "create {$20} (optimized):",
                double(exsc.cycles) / double(dead.cycles),
                (unsigned long long)dead.instructions);
    std::printf("  %-28s speedup %5.2f   instructions %llu\n",
                "conservative mask+releases:",
                double(exsc.cycles) / double(cons.cycles),
                (unsigned long long)cons.instructions);

    const auto &scsc = cache().at("sw/sc/scalar");
    const auto &wl = cache().at("sw/sc/worklist");
    const auto &grid = cache().at("sw/sc/grid");
    std::printf("\nAblation: work-list restructuring "
                "(sc, 8-unit; section 3.2.3)\n");
    std::printf("  %-28s speedup %5.2f\n", "work list (restructured):",
                double(scsc.cycles) / double(wl.cycles));
    std::printf("  %-28s speedup %5.2f\n", "all cells (original):",
                double(scsc.cycles) / double(grid.cycles));

    const auto &gsc = cache().at("sw/gcc/scalar");
    const auto &gsq = cache().at("sw/gcc/squashing");
    const auto &gsy = cache().at("sw/gcc/synchronized");
    std::printf("\nAblation: synchronization of data communication "
                "(gcc, 8-unit; section 3.1.1)\n");
    std::printf("  %-28s speedup %5.2f   memory squashes %llu\n",
                "squashing (baseline):",
                double(gsc.cycles) / double(gsq.cycles),
                (unsigned long long)gsq.memorySquashes);
    std::printf("  %-28s speedup %5.2f   memory squashes %llu\n",
                "register-synchronized:",
                double(gsc.cycles) / double(gsy.cycles),
                (unsigned long long)gsy.memorySquashes);

    const auto &wsc = cache().at("sw/wc/scalar");
    const auto &wbt = cache().at("sw/wc/bottomtest");
    const auto &wev = cache().at("sw/wc/earlyvalidate");
    std::printf("\nAblation: early validation of prediction "
                "(wc, 8-unit; section 3.1.2)\n");
    std::printf("  %-28s speedup %5.2f   squashed instrs %llu\n",
                "bottom-tested loop:",
                double(wsc.cycles) / double(wbt.cycles),
                (unsigned long long)wbt.squashedInstructions);
    std::printf("  %-28s speedup %5.2f   squashed instrs %llu\n",
                "top-tested (early valid.):",
                double(wsc.cycles) / double(wev.cycles),
                (unsigned long long)wev.squashedInstructions);
}

} // namespace

int
main(int argc, char **argv)
{
    return msim::bench::benchMain(argc, argv, registerAll, report);
}
