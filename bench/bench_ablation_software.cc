/**
 * @file
 * Ablation: the paper's software-side techniques, each toggled via
 * the one-source/two-variants mechanism:
 *
 *  - dead register analysis (section 2.2): the example workload with
 *    the conservative Figure 4 mask {$4,$8,$17,$20,$23} plus
 *    explicit releases (the default) vs the minimal create mask
 *    {$20} after dead-register analysis (define OPTMASK);
 *
 *  - work-list restructuring for load balance (section 3.2.3 and the
 *    sc discussion in 5.3): sc's restructured work-list loop vs the
 *    original loop over all (mostly empty) cells (define SCGRID);
 *
 *  - synchronization of data communication (section 3.1.1): gcc with
 *    its hot global carried in a forwarded register (define SYNC)
 *    instead of loaded early from memory — memory order squashes all
 *    but disappear, traded for an inter-task register dependence;
 *
 *  - early validation of prediction (section 3.1.2): wc restructured
 *    to test the loop exit at the top of the task (define EARLYV), so
 *    the mispredicted extra iteration squashes within cycles instead
 *    of after a full chunk scan.
 */

#include "bench/suites.hh"

int
main(int argc, char **argv)
{
    using namespace msim::bench;
    return benchMain(
        argc, argv, "sw", [](auto &e) { declareSoftware(e); },
        [](const auto &r) { reportSoftware(r); });
}
