/**
 * @file
 * Reproduces Table 4 of the paper: out-of-order issue processing
 * units. Scalar IPC, 4-/8-unit speedups, and task prediction
 * accuracies for 1-way and 2-way issue.
 */

#include "bench/bench_table34.hh"

int
main(int argc, char **argv)
{
    using namespace msim::bench;
    return benchMain(
        argc, argv, [] { registerTable34("table4", true); },
        [] {
            reportTable34(
                "table4",
                "Table 4: Out-Of-Order Issue Processing Units");
        });
}
