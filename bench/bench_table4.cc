/**
 * @file
 * Reproduces Table 4 of the paper: out-of-order issue processing
 * units. Scalar IPC, 4-/8-unit speedups, and task prediction
 * accuracies for 1-way and 2-way issue.
 */

#include "bench/suites.hh"

int
main(int argc, char **argv)
{
    using namespace msim::bench;
    return benchMain(
        argc, argv, "table4",
        [](auto &e) { declareTable34(e, "table4", true); },
        [](const auto &r) {
            reportTable34(
                r, "table4",
                "Table 4: Out-Of-Order Issue Processing Units");
        });
}
