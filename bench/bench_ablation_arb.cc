/**
 * @file
 * Ablation: ARB capacity and full-ARB policy. Section 2.3 describes
 * two responses to a full ARB: squash tasks to reclaim entries (the
 * simple solution) or stall every unit but the head (the less
 * drastic alternative the authors were investigating). This bench
 * sweeps the entries-per-bank capacity under both policies on the
 * memory-hungry workloads.
 */

#include "bench/bench_common.hh"

namespace {

using namespace msim;
using namespace msim::bench;

const std::vector<std::string> kBenches = {"example", "sc", "gcc",
                                           "compress"};
const std::vector<unsigned> kEntries = {4, 16, 64, 256};

void
registerAll()
{
    for (const std::string &name : kBenches) {
        RunSpec scalar;
        scalar.multiscalar = false;
        registerCell("arb/" + name + "/scalar", name, scalar);
        for (unsigned e : kEntries) {
            for (bool stall : {false, true}) {
                RunSpec ms;
                ms.multiscalar = true;
                ms.ms.numUnits = 8;
                ms.ms.arbEntriesPerBank = e;
                ms.ms.arbFullPolicy = stall ? ArbFullPolicy::kStall
                                            : ArbFullPolicy::kSquash;
                registerCell("arb/" + name + "/" +
                                 (stall ? "stall" : "squash") + "_" +
                                 std::to_string(e),
                             name, ms);
            }
        }
    }
}

void
report()
{
    std::printf("\nAblation: ARB entries per bank and full policy "
                "(8-unit; speedup over scalar)\n");
    std::printf("%-10s %-7s", "Program", "policy");
    for (unsigned e : kEntries)
        std::printf(" %6ue", e);
    std::printf("\n");
    for (const std::string &name : kBenches) {
        const auto &sc = cache().at("arb/" + name + "/scalar");
        for (bool stall : {false, true}) {
            std::printf("%-10s %-7s", name.c_str(),
                        stall ? "stall" : "squash");
            for (unsigned e : kEntries) {
                const auto &ms = cache().at(
                    "arb/" + name + "/" +
                    (stall ? "stall" : "squash") + "_" +
                    std::to_string(e));
                std::printf(" %7.2f",
                            double(sc.cycles) / double(ms.cycles));
            }
            std::printf("\n");
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    return msim::bench::benchMain(argc, argv, registerAll, report);
}
