/**
 * @file
 * Ablation: ARB capacity and full-ARB policy. Section 2.3 describes
 * two responses to a full ARB: squash tasks to reclaim entries (the
 * simple solution) or stall every unit but the head (the less
 * drastic alternative the authors were investigating). This bench
 * sweeps the entries-per-bank capacity under both policies on the
 * memory-hungry workloads.
 */

#include "bench/suites.hh"

int
main(int argc, char **argv)
{
    using namespace msim::bench;
    return benchMain(
        argc, argv, "arb", [](auto &e) { declareArb(e); },
        [](const auto &r) { reportArb(r); });
}
