/**
 * @file
 * Ablation: intra-unit branch prediction. The paper notes that the
 * branches contained within a task do not have to be predicted by
 * the sequencer "unless they are predicted separately within the
 * processing unit" (section 4.1). The baseline units use a static
 * stop-bit-aware policy; this bench adds a per-unit bimodal
 * predictor that steers fetch, on both the scalar machine and the
 * 8-unit multiscalar machine.
 */

#include "bench/suites.hh"

int
main(int argc, char **argv)
{
    using namespace msim::bench;
    return benchMain(
        argc, argv, "bp", [](auto &e) { declareIntraBp(e); },
        [](const auto &r) { reportIntraBp(r); });
}
