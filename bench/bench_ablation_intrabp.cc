/**
 * @file
 * Ablation: intra-unit branch prediction. The paper notes that the
 * branches contained within a task do not have to be predicted by
 * the sequencer "unless they are predicted separately within the
 * processing unit" (section 4.1). The baseline units use a static
 * stop-bit-aware policy; this bench adds a per-unit bimodal
 * predictor that steers fetch, on both the scalar machine and the
 * 8-unit multiscalar machine.
 */

#include "bench/bench_common.hh"

namespace {

using namespace msim;
using namespace msim::bench;

void
registerAll()
{
    for (const std::string &name : kPaperOrder) {
        for (bool bp : {false, true}) {
            const std::string tag = bp ? "bimodal" : "static";
            RunSpec scalar;
            scalar.multiscalar = false;
            scalar.scalar.pu.intraBranchPredict = bp;
            registerCell("bp/" + name + "/scalar_" + tag, name,
                         scalar);
            RunSpec ms;
            ms.multiscalar = true;
            ms.ms.numUnits = 8;
            ms.ms.pu.intraBranchPredict = bp;
            registerCell("bp/" + name + "/ms_" + tag, name, ms);
        }
    }
}

void
report()
{
    std::printf("\nAblation: intra-unit branch prediction "
                "(scalar IPC and 8-unit speedup)\n");
    std::printf("%-10s %12s %12s %14s %14s\n", "Program",
                "scIPC-static", "scIPC-bimod", "8U-spd-static",
                "8U-spd-bimod");
    for (const std::string &name : kPaperOrder) {
        const auto &s0 = cache().at("bp/" + name + "/scalar_static");
        const auto &s1 = cache().at("bp/" + name + "/scalar_bimodal");
        const auto &m0 = cache().at("bp/" + name + "/ms_static");
        const auto &m1 = cache().at("bp/" + name + "/ms_bimodal");
        std::printf("%-10s %12.2f %12.2f %14.2f %14.2f\n",
                    name.c_str(), s0.ipc(), s1.ipc(),
                    double(s0.cycles) / double(m0.cycles),
                    double(s1.cycles) / double(m1.cycles));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    return msim::bench::benchMain(argc, argv, registerAll, report);
}
