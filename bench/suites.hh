/**
 * @file
 * Cell declarations and paper-style reports for every evaluation
 * suite: Tables 2-4, the section 3 cycle breakdown, and the six
 * ablations. Each suite is a (declare, report) pair over the
 * experiment engine; the per-table binaries run one suite each and
 * bench_paper runs all of them in a single sweep. Declarations take
 * a workload list so smoke runs can shrink the grid without changing
 * the cell naming scheme.
 *
 * Every machine configuration comes from a shipped declarative shape
 * (the shapes/ directory, resolved through src/config) rather than
 * an inline MsConfig literal, so the grids the benches run are the
 * grids a user can reproduce with msim-explore or --machine. The
 * shape files encode the same configurations the literals used to;
 * the golden-cycle tests and the bench JSON reports are bit-identical
 * across the switch.
 */

#ifndef MSIM_BENCH_SUITES_HH
#define MSIM_BENCH_SUITES_HH

#include <algorithm>

#include "bench/bench_common.hh"
#include "config/machine_shape.hh"
#include "trace/cycle_accounting.hh"

namespace msim::bench {

using exp::Experiment;
using exp::ReportTable;
using exp::SweepResult;

// ---------------------------------------------------------------------
// Table 2: dynamic instruction counts, scalar vs multiscalar.
// ---------------------------------------------------------------------

inline void
declareTable2(Experiment &e,
              const std::vector<std::string> &names = kPaperOrder)
{
    for (const std::string &name : names) {
        e.addShape("table2/" + name + "/scalar", name, "scalar-1w");
        e.addShape("table2/" + name + "/multiscalar", name, "ms4-1w");
    }
}

inline void
reportTable2(const SweepResult &r,
             const std::vector<std::string> &names = kPaperOrder)
{
    ReportTable t("Table 2: Benchmark Instruction Counts");
    t.header({"Program", "Scalar", "Multiscalar", "Increase"});
    for (const std::string &name : names) {
        const auto &sc = r.result("table2/" + name + "/scalar");
        const auto &ms = r.result("table2/" + name + "/multiscalar");
        const double pct = double(ms.instructions) -
                           double(sc.instructions);
        t.row({name, ReportTable::count(sc.instructions),
               ReportTable::count(ms.instructions),
               ReportTable::pct(pct / double(sc.instructions))});
    }
    t.print();
}

// ---------------------------------------------------------------------
// Tables 3 and 4: IPC, 4-/8-unit speedups, prediction accuracy, for
// 1-/2-way units (Table 3 in-order, Table 4 out-of-order).
// ---------------------------------------------------------------------

inline void
declareTable34(Experiment &e, const std::string &table,
               bool out_of_order,
               const std::vector<std::string> &names = kPaperOrder)
{
    const std::string ooo = out_of_order ? "-ooo" : "";
    for (const std::string &name : names) {
        for (unsigned width : {1u, 2u}) {
            const std::string w = std::to_string(width);
            e.addShape(table + "/" + name + "/scalar_" + w + "way",
                       name, "scalar-" + w + "w" + ooo);
            for (unsigned units : {4u, 8u}) {
                e.addShape(table + "/" + name + "/" +
                               std::to_string(units) + "unit_" + w +
                               "way",
                           name,
                           "ms" + std::to_string(units) + "-" + w +
                               "w" + ooo);
            }
        }
    }
}

inline void
reportTable34(const SweepResult &r, const std::string &table,
              const std::string &title,
              const std::vector<std::string> &names = kPaperOrder)
{
    ReportTable t(title);
    t.header({"Program", "1w-IPC", "4U-Spd", "Pred", "8U-Spd", "Pred",
              "2w-IPC", "4U-Spd", "Pred", "8U-Spd", "Pred"});
    for (const std::string &name : names) {
        std::vector<std::string> row = {name};
        for (unsigned width : {1u, 2u}) {
            const auto &sc =
                r.result(table + "/" + name + "/scalar_" +
                         std::to_string(width) + "way");
            row.push_back(ReportTable::num(sc.ipc()));
            for (unsigned units : {4u, 8u}) {
                const auto &ms = r.result(
                    table + "/" + name + "/" + std::to_string(units) +
                    "unit_" + std::to_string(width) + "way");
                row.push_back(ReportTable::num(double(sc.cycles) /
                                               double(ms.cycles)));
                row.push_back(ReportTable::pct(ms.predAccuracy()));
            }
        }
        t.row(std::move(row));
    }
    t.print();
}

// ---------------------------------------------------------------------
// Section 3: distribution of unit cycles (8-unit, 1-way, in-order).
// ---------------------------------------------------------------------

inline void
declareBreakdown(Experiment &e,
                 const std::vector<std::string> &names = kPaperOrder)
{
    for (const std::string &name : names)
        e.addShape("breakdown/" + name, name, "ms8-1w");
}

inline void
reportBreakdown(const SweepResult &r,
                const std::vector<std::string> &names = kPaperOrder)
{
    ReportTable t("Section 3: distribution of unit cycles "
                  "(8-unit, 1-way, in-order; % of all unit-cycles)");
    t.header({"Program", "useful", "squash", "ringWait", "memWait",
              "intra", "fetch", "waitRet", "idle"});
    for (const std::string &name : names) {
        const auto &res = r.result("breakdown/" + name);
        const CycleAccountingResult &a = res.accounting;
        const std::uint64_t expect =
            std::uint64_t(res.cycles) * a.numUnits;
        panicIf(a.sum() != expect, name,
                ": accounting broken: categories sum to ", a.sum(),
                ", expected cycles x units = ", expect);
        auto pct = [&](CycleCat c) {
            return ReportTable::pct(double(a[c]) / double(expect));
        };
        t.row({name, pct(CycleCat::kBusy), pct(CycleCat::kSquashed),
               pct(CycleCat::kRingWait), pct(CycleCat::kMemWait),
               pct(CycleCat::kIntraWait), pct(CycleCat::kFetchStall),
               pct(CycleCat::kRetireWait), pct(CycleCat::kIdle)});
    }
    t.print();
    std::printf("\nEvery row sums to 100%%: the accounting classifies "
                "each unit-cycle exactly once.\n");

    // Per-unit view for one representative workload: load balance
    // across the circular unit queue.
    const std::string rep =
        std::find(names.begin(), names.end(), "compress") !=
                names.end()
            ? "compress"
            : names.front();
    const auto &res = r.result("breakdown/" + rep);
    ReportTable u(rep + ", per unit (% of that unit's cycles):");
    u.header({"Unit", "useful", "squash", "ringWait", "memWait",
              "intra", "fetch", "waitRet", "idle"});
    for (unsigned i = 0; i < res.accounting.numUnits; ++i) {
        const auto &pu = res.accounting.perUnit[i];
        auto pct = [&](CycleCat c) {
            return ReportTable::pct(double(pu[size_t(c)]) /
                                    double(res.cycles));
        };
        u.row({"pu" + std::to_string(i), pct(CycleCat::kBusy),
               pct(CycleCat::kSquashed), pct(CycleCat::kRingWait),
               pct(CycleCat::kMemWait), pct(CycleCat::kIntraWait),
               pct(CycleCat::kFetchStall), pct(CycleCat::kRetireWait),
               pct(CycleCat::kIdle)});
    }
    u.print();
}

// ---------------------------------------------------------------------
// Ablation: task predictor kinds (PAs vs last-target vs static).
// ---------------------------------------------------------------------

inline const std::vector<std::string> kPredictorKinds = {"pas", "last",
                                                         "static"};

inline void
declarePredictor(Experiment &e,
                 const std::vector<std::string> &names = kPaperOrder)
{
    for (const std::string &name : names) {
        e.addShape("pred/" + name + "/scalar", name, "scalar-1w");
        for (const std::string &p : kPredictorKinds)
            e.addShape("pred/" + name + "/" + p, name, "pred-" + p);
    }
}

inline void
reportPredictor(const SweepResult &r,
                const std::vector<std::string> &names = kPaperOrder)
{
    ReportTable t(
        "Ablation: task predictor (8-unit, 1-way, in-order)");
    std::vector<std::string> head = {"Program"};
    for (const auto &p : kPredictorKinds) {
        head.push_back(p + "-spd");
        head.push_back(p + "-acc");
    }
    t.header(head);
    for (const std::string &name : names) {
        const auto &sc = r.result("pred/" + name + "/scalar");
        std::vector<std::string> row = {name};
        for (const auto &p : kPredictorKinds) {
            const auto &ms = r.result("pred/" + name + "/" + p);
            row.push_back(ReportTable::num(double(sc.cycles) /
                                           double(ms.cycles)));
            row.push_back(ReportTable::pct(ms.predAccuracy()));
        }
        t.row(std::move(row));
    }
    t.print();
}

// ---------------------------------------------------------------------
// Ablation: unit count scaling (1..16 units).
// ---------------------------------------------------------------------

inline const std::vector<unsigned> kUnitCounts = {1, 2, 4, 8, 16};

inline void
declareUnits(Experiment &e,
             const std::vector<std::string> &names = kPaperOrder)
{
    for (const std::string &name : names) {
        e.addShape("units/" + name + "/scalar", name, "scalar-1w");
        for (unsigned u : kUnitCounts)
            e.addShape("units/" + name + "/" + std::to_string(u),
                       name, "units-" + std::to_string(u));
    }
}

inline void
reportUnits(const SweepResult &r,
            const std::vector<std::string> &names = kPaperOrder)
{
    ReportTable t(
        "Ablation: speedup vs number of units (1-way, in-order)");
    std::vector<std::string> head = {"Program"};
    for (unsigned u : kUnitCounts)
        head.push_back(std::to_string(u) + "U");
    t.header(head);
    for (const std::string &name : names) {
        const auto &sc = r.result("units/" + name + "/scalar");
        std::vector<std::string> row = {name};
        for (unsigned u : kUnitCounts) {
            const auto &ms =
                r.result("units/" + name + "/" + std::to_string(u));
            row.push_back(ReportTable::num(double(sc.cycles) /
                                           double(ms.cycles)));
        }
        t.row(std::move(row));
    }
    t.print();
}

// ---------------------------------------------------------------------
// Ablation: ring hop latency (register-communication-heavy set).
// ---------------------------------------------------------------------

inline const std::vector<std::string> kRingBenches = {
    "wc", "eqntott", "compress", "example"};
inline const std::vector<unsigned> kRingHops = {1, 2, 3, 4};

inline void
declareRing(Experiment &e,
            const std::vector<std::string> &names = kRingBenches)
{
    for (const std::string &name : names) {
        e.addShape("ring/" + name + "/scalar", name, "scalar-1w");
        for (unsigned h : kRingHops)
            e.addShape("ring/" + name + "/hop" + std::to_string(h),
                       name, "ring-hop" + std::to_string(h));
    }
}

inline void
reportRing(const SweepResult &r,
           const std::vector<std::string> &names = kRingBenches)
{
    ReportTable t("Ablation: ring hop latency (8-unit, 1-way, "
                  "in-order; speedup over scalar)");
    std::vector<std::string> head = {"Program"};
    for (unsigned h : kRingHops)
        head.push_back(std::to_string(h) + "c");
    t.header(head);
    for (const std::string &name : names) {
        const auto &sc = r.result("ring/" + name + "/scalar");
        std::vector<std::string> row = {name};
        for (unsigned h : kRingHops) {
            const auto &ms = r.result("ring/" + name + "/hop" +
                                      std::to_string(h));
            row.push_back(ReportTable::num(double(sc.cycles) /
                                           double(ms.cycles)));
        }
        t.row(std::move(row));
    }
    t.print();
}

// ---------------------------------------------------------------------
// Ablation: ARB capacity and full-ARB policy (memory-hungry set).
// ---------------------------------------------------------------------

inline const std::vector<std::string> kArbBenches = {"example", "sc",
                                                     "gcc", "compress"};
inline const std::vector<unsigned> kArbEntries = {4, 16, 64, 256};

inline void
declareArb(Experiment &e,
           const std::vector<std::string> &names = kArbBenches)
{
    for (const std::string &name : names) {
        e.addShape("arb/" + name + "/scalar", name, "scalar-1w");
        for (unsigned entries : kArbEntries) {
            for (bool stall : {false, true}) {
                const std::string policy = stall ? "stall" : "squash";
                e.addShape("arb/" + name + "/" + policy + "_" +
                               std::to_string(entries),
                           name,
                           "arb-" + policy + "-" +
                               std::to_string(entries));
            }
        }
    }
}

inline void
reportArb(const SweepResult &r,
          const std::vector<std::string> &names = kArbBenches)
{
    ReportTable t("Ablation: ARB entries per bank and full policy "
                  "(8-unit; speedup over scalar)");
    std::vector<std::string> head = {"Program", "policy"};
    for (unsigned e : kArbEntries)
        head.push_back(std::to_string(e) + "e");
    t.header(head);
    for (const std::string &name : names) {
        const auto &sc = r.result("arb/" + name + "/scalar");
        for (bool stall : {false, true}) {
            std::vector<std::string> row = {
                name, stall ? "stall" : "squash"};
            for (unsigned entries : kArbEntries) {
                const auto &ms = r.result(
                    "arb/" + name + "/" +
                    (stall ? "stall" : "squash") + "_" +
                    std::to_string(entries));
                row.push_back(ReportTable::num(double(sc.cycles) /
                                               double(ms.cycles)));
            }
            t.row(std::move(row));
        }
    }
    t.print();
}

// ---------------------------------------------------------------------
// Ablation: intra-unit branch prediction (static vs bimodal).
// ---------------------------------------------------------------------

inline void
declareIntraBp(Experiment &e,
               const std::vector<std::string> &names = kPaperOrder)
{
    for (const std::string &name : names) {
        for (bool bp : {false, true}) {
            const std::string tag = bp ? "bimodal" : "static";
            e.addShape("bp/" + name + "/scalar_" + tag, name,
                       bp ? "scalar-bimodal" : "scalar-1w");
            e.addShape("bp/" + name + "/ms_" + tag, name,
                       bp ? "ms8-bimodal" : "ms8-1w");
        }
    }
}

inline void
reportIntraBp(const SweepResult &r,
              const std::vector<std::string> &names = kPaperOrder)
{
    ReportTable t("Ablation: intra-unit branch prediction "
                  "(scalar IPC and 8-unit speedup)");
    t.header({"Program", "scIPC-static", "scIPC-bimod",
              "8U-spd-static", "8U-spd-bimod"});
    for (const std::string &name : names) {
        const auto &s0 = r.result("bp/" + name + "/scalar_static");
        const auto &s1 = r.result("bp/" + name + "/scalar_bimodal");
        const auto &m0 = r.result("bp/" + name + "/ms_static");
        const auto &m1 = r.result("bp/" + name + "/ms_bimodal");
        t.row({name, ReportTable::num(s0.ipc()),
               ReportTable::num(s1.ipc()),
               ReportTable::num(double(s0.cycles) / double(m0.cycles)),
               ReportTable::num(double(s1.cycles) /
                                double(m1.cycles))});
    }
    t.print();
}

// ---------------------------------------------------------------------
// Ablation: the paper's software-side techniques (fixed cells; see
// bench_ablation_software.cc for the section-by-section story).
// ---------------------------------------------------------------------

inline void
declareSoftware(Experiment &e)
{
    // The software ablation varies assembler defines, not hardware:
    // every cell runs one of two shapes with different workload
    // variants compiled in.
    const RunSpec scalar = config::specForShape("scalar-1w");
    const RunSpec ms8 = config::specForShape("ms8-1w");

    // Dead register analysis on the example workload (section 2.2).
    e.add("sw/example/scalar", "example", scalar);
    e.add("sw/example/consmask", "example", ms8);
    RunSpec opt = ms8;
    opt.defines = {"OPTMASK"};
    e.add("sw/example/deadreg", "example", opt);

    // Work-list restructuring on sc (section 3.2.3).
    e.add("sw/sc/scalar", "sc", scalar);
    e.add("sw/sc/worklist", "sc", ms8);
    RunSpec grid = ms8;
    grid.defines = {"SCGRID"};
    e.add("sw/sc/grid", "sc", grid);

    // Synchronization of data communication on gcc (section 3.1.1).
    e.add("sw/gcc/scalar", "gcc", scalar);
    e.add("sw/gcc/squashing", "gcc", ms8);
    RunSpec sync = ms8;
    sync.defines = {"SYNC"};
    e.add("sw/gcc/synchronized", "gcc", sync);

    // Early prediction validation on wc (section 3.1.2).
    e.add("sw/wc/scalar", "wc", scalar);
    e.add("sw/wc/bottomtest", "wc", ms8);
    RunSpec earlyv = ms8;
    earlyv.defines = {"EARLYV"};
    e.add("sw/wc/earlyvalidate", "wc", earlyv);
}

inline void
reportSoftware(const SweepResult &r)
{
    auto speedup = [&](const std::string &base,
                       const std::string &cell) {
        return ReportTable::num(double(r.result(base).cycles) /
                                double(r.result(cell).cycles));
    };

    ReportTable t("Ablation: software techniques (8-unit)");
    t.header({"Technique", "variant", "speedup", "note"});
    t.row({"dead-reg analysis (2.2)", "create {$20} (optimized)",
           speedup("sw/example/scalar", "sw/example/deadreg"),
           ReportTable::count(
               r.result("sw/example/deadreg").instructions) +
               " instrs"});
    t.row({"dead-reg analysis (2.2)", "conservative mask+releases",
           speedup("sw/example/scalar", "sw/example/consmask"),
           ReportTable::count(
               r.result("sw/example/consmask").instructions) +
               " instrs"});
    t.row({"work-list restruct (3.2.3)", "work list (restructured)",
           speedup("sw/sc/scalar", "sw/sc/worklist"), ""});
    t.row({"work-list restruct (3.2.3)", "all cells (original)",
           speedup("sw/sc/scalar", "sw/sc/grid"), ""});
    t.row({"data-comm sync (3.1.1)", "squashing (baseline)",
           speedup("sw/gcc/scalar", "sw/gcc/squashing"),
           ReportTable::count(
               r.result("sw/gcc/squashing").memorySquashes) +
               " mem squashes"});
    t.row({"data-comm sync (3.1.1)", "register-synchronized",
           speedup("sw/gcc/scalar", "sw/gcc/synchronized"),
           ReportTable::count(
               r.result("sw/gcc/synchronized").memorySquashes) +
               " mem squashes"});
    t.row({"early validation (3.1.2)", "bottom-tested loop",
           speedup("sw/wc/scalar", "sw/wc/bottomtest"),
           ReportTable::count(
               r.result("sw/wc/bottomtest").squashedInstructions) +
               " squashed instrs"});
    t.row({"early validation (3.1.2)", "top-tested (early valid.)",
           speedup("sw/wc/scalar", "sw/wc/earlyvalidate"),
           ReportTable::count(
               r.result("sw/wc/earlyvalidate").squashedInstructions) +
               " squashed instrs"});
    t.print();
}

// ---------------------------------------------------------------------
// Ablation: the shared L2 hierarchy (size x associativity x MSHRs x
// inclusion, under the fast and slow memory bus).
// ---------------------------------------------------------------------

/** The cache-stress family: the workloads the L2 exists for. */
inline const std::vector<std::string> kL2Benches = {
    "pointer_chase", "stream_triad", "gups", "stencil", "thrash",
};

/** Reduced stress set for --smoke. */
inline const std::vector<std::string> kL2SmokeBenches = {
    "pointer_chase", "thrash",
};

/**
 * The L2 design points, as shipped shape presets. "off" is the
 * default 4-unit machine without an L2; the rest vary one axis at a
 * time around the 256 KB / 8-way / 4-bank / 8-MSHR NINE centre.
 */
inline const std::vector<std::pair<std::string, std::string>>
    kL2Points = {
        {"off", "ms4-1w"},
        {"64k", "l2-64k"},
        {"256k", "l2-256k"},
        {"1m", "l2-1m"},
        {"256k-a1", "l2-256k-a1"},
        {"256k-mshr1", "l2-256k-mshr1"},
        {"256k-incl", "l2-256k-inclusive"},
        {"256k-excl", "l2-256k-exclusive"},
};

/** Smoke subset of the design points. */
inline const std::vector<std::pair<std::string, std::string>>
    kL2SmokePoints = {
        {"off", "ms4-1w"},
        {"256k", "l2-256k"},
        {"256k-mshr1", "l2-256k-mshr1"},
};

inline void
declareL2(Experiment &e, bool smoke = false)
{
    const auto &names = smoke ? kL2SmokeBenches : kL2Benches;
    const auto &points = smoke ? kL2SmokePoints : kL2Points;
    for (const std::string &name : names) {
        for (bool slow : {false, true}) {
            const std::string mem = slow ? "slowmem" : "fastmem";
            for (const auto &[tag, shape] : points) {
                // Machine from the shipped preset; the slow-memory
                // regime raises the bus's first-beat latency to 100
                // cycles (same knob as the throughput benches).
                RunSpec spec = config::specForShape(shape);
                if (slow)
                    spec.ms.bus.firstBeatLatency = 100;
                e.add("l2/" + name + "/" + mem + "/" + tag, name,
                      spec);
            }
        }
    }
}

inline void
reportL2(const SweepResult &r, bool smoke = false)
{
    const auto &names = smoke ? kL2SmokeBenches : kL2Benches;
    const auto &points = smoke ? kL2SmokePoints : kL2Points;
    for (bool slow : {false, true}) {
        const std::string mem = slow ? "slowmem" : "fastmem";
        ReportTable t("Ablation: shared L2 (" + mem +
                      "; speedup over the L2-less 4-unit machine)");
        std::vector<std::string> head = {"Program"};
        for (const auto &[tag, shape] : points) {
            (void)shape;
            head.push_back(tag == "off" ? "off (cyc)" : tag);
        }
        t.header(head);
        for (const std::string &name : names) {
            const auto &off =
                r.result("l2/" + name + "/" + mem + "/off");
            std::vector<std::string> row = {name};
            for (const auto &[tag, shape] : points) {
                (void)shape;
                if (tag == "off") {
                    row.push_back(ReportTable::count(off.cycles));
                    continue;
                }
                const auto &ms =
                    r.result("l2/" + name + "/" + mem + "/" + tag);
                row.push_back(ReportTable::num(double(off.cycles) /
                                               double(ms.cycles)));
            }
            t.row(std::move(row));
        }
        t.print();
    }
}

} // namespace msim::bench

#endif // MSIM_BENCH_SUITES_HH
