/**
 * @file
 * Shared implementation of Tables 3 and 4 of the paper: for each
 * benchmark, the scalar IPC, the 4-unit and 8-unit multiscalar
 * speedups (over the scalar machine with identical processing units),
 * and the task prediction accuracies, for 1-way and 2-way issue
 * units. Table 3 uses in-order units, Table 4 out-of-order units.
 */

#ifndef MSIM_BENCH_BENCH_TABLE34_HH
#define MSIM_BENCH_BENCH_TABLE34_HH

#include "bench/bench_common.hh"

namespace msim::bench {

inline void
registerTable34(const std::string &table, bool out_of_order)
{
    for (const std::string &name : kPaperOrder) {
        for (unsigned width : {1u, 2u}) {
            RunSpec scalar;
            scalar.multiscalar = false;
            scalar.scalar.pu.issueWidth = width;
            scalar.scalar.pu.outOfOrder = out_of_order;
            registerCell(table + "/" + name + "/scalar_" +
                             std::to_string(width) + "way",
                         name, scalar);
            for (unsigned units : {4u, 8u}) {
                RunSpec ms;
                ms.multiscalar = true;
                ms.ms.numUnits = units;
                ms.ms.pu.issueWidth = width;
                ms.ms.pu.outOfOrder = out_of_order;
                registerCell(table + "/" + name + "/" +
                                 std::to_string(units) + "unit_" +
                                 std::to_string(width) + "way",
                             name, ms);
            }
        }
    }
}

inline void
reportTable34(const std::string &table, const std::string &title)
{
    std::printf("\n%s\n", title.c_str());
    std::printf("%-10s | %6s %8s %6s %8s %6s | "
                "%6s %8s %6s %8s %6s\n",
                "", "1-way", "", "", "", "", "2-way", "", "", "", "");
    std::printf("%-10s | %6s %8s %6s %8s %6s | "
                "%6s %8s %6s %8s %6s\n",
                "Program", "IPC", "4U-Spd", "Pred", "8U-Spd", "Pred",
                "IPC", "4U-Spd", "Pred", "8U-Spd", "Pred");
    for (const std::string &name : kPaperOrder) {
        std::printf("%-10s |", name.c_str());
        for (unsigned width : {1u, 2u}) {
            const auto &sc = cache().at(table + "/" + name +
                                        "/scalar_" +
                                        std::to_string(width) + "way");
            std::printf(" %6.2f", sc.ipc());
            for (unsigned units : {4u, 8u}) {
                const auto &ms = cache().at(
                    table + "/" + name + "/" + std::to_string(units) +
                    "unit_" + std::to_string(width) + "way");
                std::printf(" %8.2f %5.1f%%",
                            double(sc.cycles) / double(ms.cycles),
                            100.0 * ms.predAccuracy());
            }
            if (width == 1)
                std::printf(" |");
        }
        std::printf("\n");
    }
}

} // namespace msim::bench

#endif // MSIM_BENCH_BENCH_TABLE34_HH
