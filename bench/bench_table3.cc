/**
 * @file
 * Reproduces Table 3 of the paper: in-order issue processing units.
 * Scalar IPC, 4-/8-unit speedups, and task prediction accuracies for
 * 1-way and 2-way issue.
 */

#include "bench/suites.hh"

int
main(int argc, char **argv)
{
    using namespace msim::bench;
    return benchMain(
        argc, argv, "table3",
        [](auto &e) { declareTable34(e, "table3", false); },
        [](const auto &r) {
            reportTable34(r, "table3",
                          "Table 3: In-Order Issue Processing Units");
        });
}
