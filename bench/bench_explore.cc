/**
 * @file
 * The design-space explorer bench: sweep the canonical machine-shape
 * grid (units × ring hop latency × ARB entries × task predictor over
 * paper-default) and report the Pareto frontier of geomean speedup
 * against the hardware-cost proxy. Beyond the shared bench flags,
 * --pareto FILE writes the msim-explore-v1 JSON document (points,
 * costs, speedups, frontier) next to the raw msim-sweep-v1 cells of
 * --json FILE.
 *
 * --smoke shrinks both the axes (ExploreAxes::smoke) and the
 * workload set — CI runs it on every push as the gate that the
 * config layer, the explorer and the cost model stay wired together.
 */

#include <fstream>

#include "bench/bench_common.hh"
#include "exp/explore.hh"

namespace {

using namespace msim;
using namespace msim::bench;

struct ExploreOptions
{
    BenchOptions bench;
    std::string paretoPath;
};

ExploreOptions
parseExploreArgs(int argc, char **argv)
{
    // Peel off --pareto, delegate the rest to the shared parser.
    ExploreOptions opt;
    std::vector<char *> rest = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--pareto") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "--pareto needs a value\n");
                std::exit(2);
            }
            opt.paretoPath = argv[++i];
        } else {
            rest.push_back(argv[i]);
        }
    }
    opt.bench = parseArgs(int(rest.size()), rest.data());
    return opt;
}

} // namespace

int
main(int argc, char **argv)
{
    const ExploreOptions opt = parseExploreArgs(argc, argv);

    const exp::ExploreAxes axes =
        opt.bench.smoke ? exp::ExploreAxes::smoke() : exp::ExploreAxes();
    const std::vector<std::string> workloads =
        opt.bench.smoke ? kSmokeOrder : kPaperOrder;

    exp::Experiment experiment(opt.bench.smoke ? "explore-smoke"
                                               : "explore");
    exp::declareExplore(experiment, axes, workloads);
    const exp::SweepResult sweep = runExperiment(experiment, opt.bench);

    const exp::ExploreReport report =
        exp::computeExplore(sweep, axes, workloads);
    exp::renderExploreReport(report);

    if (!opt.paretoPath.empty()) {
        std::ofstream os(opt.paretoPath);
        fatalIf(!os, "cannot open --pareto file '", opt.paretoPath,
                "'");
        exp::writeExploreJson(os, report);
        std::printf("wrote explore report: %s\n",
                    opt.paretoPath.c_str());
    }

    if (report.frontier.empty()) {
        std::fprintf(stderr, "no Pareto frontier: every grid point "
                             "failed\n");
        return 1;
    }
    return sweep.failures() == 0 ? 0 : 1;
}
