/**
 * @file
 * Reproduces the section 3 analysis: the distribution of the
 * available processing unit cycles in multiscalar execution — useful
 * computation, non-useful (squashed) computation, no-computation
 * cycles (split into waiting for predecessor values over the ring,
 * waiting on memory, intra-task latency, fetch stalls and waiting for
 * retirement), and idle cycles (no assigned task). Reported for the
 * 8-unit, 1-way, in-order configuration as percentages of all
 * unit-cycles.
 *
 * The numbers come from the exact cycle-accounting subsystem
 * (src/trace/cycle_accounting.hh): every unit-cycle is classified
 * into exactly one category, so each row sums to 100% by
 * construction. The sum invariant is re-verified here per workload.
 */

#include "bench/suites.hh"

int
main(int argc, char **argv)
{
    using namespace msim::bench;
    return benchMain(
        argc, argv, "breakdown", [](auto &e) { declareBreakdown(e); },
        [](const auto &r) { reportBreakdown(r); });
}
