/**
 * @file
 * Reproduces the section 3 analysis: the distribution of the
 * available processing unit cycles in multiscalar execution — useful
 * computation, non-useful (squashed) computation, no-computation
 * cycles (split into waiting for predecessor values, intra-task
 * latency, fetch stalls and waiting for retirement), and idle cycles
 * (no assigned task). Reported for the 8-unit, 1-way, in-order
 * configuration as percentages of all unit-cycles.
 */

#include "bench/bench_common.hh"

namespace {

using namespace msim;
using namespace msim::bench;

constexpr unsigned kUnits = 8;

void
registerAll()
{
    for (const std::string &name : kPaperOrder) {
        RunSpec ms;
        ms.multiscalar = true;
        ms.ms.numUnits = kUnits;
        registerCell("breakdown/" + name, name, ms);
    }
}

void
report()
{
    std::printf("\nSection 3: distribution of unit cycles "
                "(8-unit, 1-way, in-order; %% of all unit-cycles)\n");
    std::printf("%-10s %7s %8s %9s %9s %8s %9s %6s\n", "Program",
                "useful", "nonuse", "waitPred", "waitIntra", "fetch",
                "waitRet", "idle");
    for (const std::string &name : kPaperOrder) {
        const auto &r = cache().at("breakdown/" + name);
        const double total = double(r.cycles) * kUnits;
        auto pct = [&](std::uint64_t v) {
            return 100.0 * double(v) / total;
        };
        const auto &u = r.usefulCycles;
        std::printf(
            "%-10s %6.1f%% %7.1f%% %8.1f%% %8.1f%% %7.1f%% %8.1f%% "
            "%5.1f%%\n",
            name.c_str(), pct(u.busy), pct(r.squashedCycles.total()),
            pct(u.waitPred), pct(u.waitIntra), pct(u.fetchStall),
            pct(u.waitRetire), pct(r.idleCycles));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    return msim::bench::benchMain(argc, argv, registerAll, report);
}
