/**
 * @file
 * Reproduces the section 3 analysis: the distribution of the
 * available processing unit cycles in multiscalar execution — useful
 * computation, non-useful (squashed) computation, no-computation
 * cycles (split into waiting for predecessor values over the ring,
 * waiting on memory, intra-task latency, fetch stalls and waiting for
 * retirement), and idle cycles (no assigned task). Reported for the
 * 8-unit, 1-way, in-order configuration as percentages of all
 * unit-cycles.
 *
 * The numbers come from the exact cycle-accounting subsystem
 * (src/trace/cycle_accounting.hh): every unit-cycle is classified
 * into exactly one category, so each row sums to 100% by
 * construction. The sum invariant is re-verified here per workload.
 */

#include "bench/bench_common.hh"
#include "trace/cycle_accounting.hh"

namespace {

using namespace msim;
using namespace msim::bench;

constexpr unsigned kUnits = 8;

void
registerAll()
{
    for (const std::string &name : kPaperOrder) {
        RunSpec ms;
        ms.multiscalar = true;
        ms.ms.numUnits = kUnits;
        registerCell("breakdown/" + name, name, ms);
    }
}

void
report()
{
    std::printf("\nSection 3: distribution of unit cycles "
                "(8-unit, 1-way, in-order; %% of all unit-cycles)\n");
    std::printf("%-10s %7s %8s %9s %8s %9s %8s %9s %6s\n", "Program",
                "useful", "squash", "ringWait", "memWait", "intra",
                "fetch", "waitRet", "idle");
    for (const std::string &name : kPaperOrder) {
        const auto &r = cache().at("breakdown/" + name);
        const CycleAccountingResult &a = r.accounting;
        const std::uint64_t expect =
            std::uint64_t(r.cycles) * a.numUnits;
        if (a.sum() != expect) {
            std::fprintf(stderr,
                         "%s: accounting broken: categories sum to "
                         "%llu, expected cycles x units = %llu\n",
                         name.c_str(),
                         (unsigned long long)a.sum(),
                         (unsigned long long)expect);
            std::exit(1);
        }
        auto pct = [&](CycleCat c) {
            return 100.0 * double(a[c]) / double(expect);
        };
        std::printf(
            "%-10s %6.1f%% %7.1f%% %8.1f%% %7.1f%% %8.1f%% %7.1f%% "
            "%8.1f%% %5.1f%%\n",
            name.c_str(), pct(CycleCat::kBusy), pct(CycleCat::kSquashed),
            pct(CycleCat::kRingWait), pct(CycleCat::kMemWait),
            pct(CycleCat::kIntraWait), pct(CycleCat::kFetchStall),
            pct(CycleCat::kRetireWait), pct(CycleCat::kIdle));
    }
    std::printf("\nEvery row sums to 100%%: the accounting classifies "
                "each unit-cycle exactly once.\n");

    // Per-unit view for one representative workload: load balance
    // across the circular unit queue.
    const auto &r = cache().at("breakdown/compress");
    std::printf("\ncompress, per unit (%% of that unit's cycles):\n");
    std::printf("%-6s %7s %8s %9s %8s %9s %8s %9s %6s\n", "Unit",
                "useful", "squash", "ringWait", "memWait", "intra",
                "fetch", "waitRet", "idle");
    for (unsigned u = 0; u < r.accounting.numUnits; ++u) {
        const auto &pu = r.accounting.perUnit[u];
        auto pct = [&](CycleCat c) {
            return 100.0 * double(pu[size_t(c)]) / double(r.cycles);
        };
        std::printf(
            "pu%-4u %6.1f%% %7.1f%% %8.1f%% %7.1f%% %8.1f%% %7.1f%% "
            "%8.1f%% %5.1f%%\n",
            u, pct(CycleCat::kBusy), pct(CycleCat::kSquashed),
            pct(CycleCat::kRingWait), pct(CycleCat::kMemWait),
            pct(CycleCat::kIntraWait), pct(CycleCat::kFetchStall),
            pct(CycleCat::kRetireWait), pct(CycleCat::kIdle));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    return msim::bench::benchMain(argc, argv, registerAll, report);
}
