/**
 * @file
 * Ablation: unit count scaling. The paper evaluates 4- and 8-unit
 * machines; this bench sweeps 1, 2, 4, 8 and 16 units to expose
 * where each workload's parallelism saturates (and where squash
 * behaviour makes more units useless).
 */

#include "bench/suites.hh"

int
main(int argc, char **argv)
{
    using namespace msim::bench;
    return benchMain(
        argc, argv, "units", [](auto &e) { declareUnits(e); },
        [](const auto &r) { reportUnits(r); });
}
