/**
 * @file
 * Ablation: unit count scaling. The paper evaluates 4- and 8-unit
 * machines; this bench sweeps 1, 2, 4, 8 and 16 units to expose
 * where each workload's parallelism saturates (and where squash
 * behaviour makes more units useless).
 */

#include "bench/bench_common.hh"

namespace {

using namespace msim;
using namespace msim::bench;

const std::vector<unsigned> kUnits = {1, 2, 4, 8, 16};

void
registerAll()
{
    for (const std::string &name : kPaperOrder) {
        RunSpec scalar;
        scalar.multiscalar = false;
        registerCell("units/" + name + "/scalar", name, scalar);
        for (unsigned u : kUnits) {
            RunSpec ms;
            ms.multiscalar = true;
            ms.ms.numUnits = u;
            registerCell("units/" + name + "/" + std::to_string(u),
                         name, ms);
        }
    }
}

void
report()
{
    std::printf("\nAblation: speedup vs number of units "
                "(1-way, in-order)\n");
    std::printf("%-10s", "Program");
    for (unsigned u : kUnits)
        std::printf(" %7uU", u);
    std::printf("\n");
    for (const std::string &name : kPaperOrder) {
        const auto &sc = cache().at("units/" + name + "/scalar");
        std::printf("%-10s", name.c_str());
        for (unsigned u : kUnits) {
            const auto &ms =
                cache().at("units/" + name + "/" + std::to_string(u));
            std::printf(" %8.2f",
                        double(sc.cycles) / double(ms.cycles));
        }
        std::printf("\n");
    }
}

} // namespace

int
main(int argc, char **argv)
{
    return msim::bench::benchMain(argc, argv, registerAll, report);
}
