/**
 * @file
 * Simulator throughput: how many simulated instructions and cycles
 * per host second each machine model achieves. This is the one bench
 * where google-benchmark's statistical repetition is meaningful, so
 * cells run with normal iteration counts.
 */

#include <benchmark/benchmark.h>

#include "sim/runner.hh"
#include "workloads/workload.hh"

namespace {

using namespace msim;

void
simScalar(benchmark::State &state)
{
    workloads::Workload w = workloads::get("wc");
    RunSpec spec;
    spec.multiscalar = false;
    std::uint64_t instrs = 0, cycles = 0;
    for (auto _ : state) {
        RunResult r = runWorkload(w, spec);
        instrs += r.instructions;
        cycles += r.cycles;
    }
    state.counters["sim_instrs_per_s"] = benchmark::Counter(
        double(instrs), benchmark::Counter::kIsRate);
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
}

void
simMultiscalar(benchmark::State &state)
{
    workloads::Workload w = workloads::get("wc");
    RunSpec spec;
    spec.multiscalar = true;
    spec.ms.numUnits = unsigned(state.range(0));
    std::uint64_t instrs = 0, cycles = 0;
    for (auto _ : state) {
        RunResult r = runWorkload(w, spec);
        instrs += r.instructions;
        cycles += r.cycles;
    }
    state.counters["sim_instrs_per_s"] = benchmark::Counter(
        double(instrs), benchmark::Counter::kIsRate);
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
}

BENCHMARK(simScalar)->Unit(benchmark::kMillisecond);
BENCHMARK(simMultiscalar)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
