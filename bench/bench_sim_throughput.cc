/**
 * @file
 * Simulator throughput: how many simulated instructions and cycles
 * per host second each machine model achieves. This is the one bench
 * where google-benchmark's statistical repetition is meaningful, so
 * cells run with normal iteration counts.
 *
 * Two guards follow the benchmark cells:
 *
 *  - the tracing fast path: runs with tracing disabled are timed
 *    against runs tracing into a null sink, and the binary fails
 *    (exit 1) when the disabled configuration is more than 5%
 *    slower — i.e. when instrumentation stops being free for
 *    non-tracing users;
 *
 *  - sweep scaling: a fixed experiment cell set is executed through
 *    the SweepScheduler serially and with a worker pool, and the
 *    wall-clock ratio is recorded (sweepScaling benchmark counters,
 *    visible in --benchmark_format=json) so the perf trajectory
 *    captures the parallel-sweep speedup alongside raw simulator
 *    throughput;
 *
 *  - fast-forward before/after: every paper workload is run in both
 *    machine modes with the quiescence fast-forward disabled and
 *    enabled. The binary fails (exit 1) when the two runs disagree on
 *    the cycle count — the fast-forward must be cycle-exact — and the
 *    measured simulated-cycles-per-second for both configurations,
 *    plus the speedup, is written to BENCH_sim_throughput.json in the
 *    current directory for the perf trajectory.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "config/machine_shape.hh"
#include "exp/experiment.hh"
#include "exp/scheduler.hh"
#include "sim/runner.hh"
#include "workloads/workload.hh"

namespace {

using namespace msim;

void
simScalar(benchmark::State &state)
{
    workloads::Workload w = workloads::get("wc");
    const RunSpec spec = config::specForShape("scalar-1w");
    std::uint64_t instrs = 0, cycles = 0;
    for (auto _ : state) {
        RunResult r = runWorkload(w, spec);
        instrs += r.instructions;
        cycles += r.cycles;
    }
    state.counters["sim_instrs_per_s"] = benchmark::Counter(
        double(instrs), benchmark::Counter::kIsRate);
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
}

void
simMultiscalar(benchmark::State &state)
{
    workloads::Workload w = workloads::get("wc");
    const RunSpec spec = config::specForShape(
        "units-" + std::to_string(state.range(0)));
    std::uint64_t instrs = 0, cycles = 0;
    for (auto _ : state) {
        RunResult r = runWorkload(w, spec);
        instrs += r.instructions;
        cycles += r.cycles;
    }
    state.counters["sim_instrs_per_s"] = benchmark::Counter(
        double(instrs), benchmark::Counter::kIsRate);
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
}

void
simMultiscalarTracedNull(benchmark::State &state)
{
    workloads::Workload w = workloads::get("wc");
    RunSpec spec = config::specForShape(
        "units-" + std::to_string(state.range(0)));
    spec.trace.enabled = true;
    spec.trace.sink = "null";
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        RunResult r = runWorkload(w, spec);
        cycles += r.cycles;
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
}

/** The fixed cell set used for the sweep-scaling measurement. */
exp::Experiment
scalingExperiment()
{
    exp::Experiment e("throughput-scaling");
    for (const char *name : {"wc", "cmp", "example"}) {
        e.addShape(std::string("scale/") + name + "/scalar", name,
                   "scalar-1w");
        for (unsigned units : {2u, 4u, 8u})
            e.addShape(std::string("scale/") + name + "/" +
                           std::to_string(units) + "u",
                       name, "units-" + std::to_string(units));
    }
    return e;
}

/**
 * One serial + one parallel execution of the fixed cell set per
 * iteration; the counters record both wall times and their ratio, so
 * the JSON perf record tracks the multi-core sweep speedup.
 */
void
sweepScaling(benchmark::State &state)
{
    const unsigned jobs = unsigned(state.range(0));
    const exp::Experiment e = scalingExperiment();
    double serial_s = 0, parallel_s = 0;
    for (auto _ : state) {
        exp::SweepScheduler serial(1);
        serial_s += serial.run(e).wallSeconds;
        exp::SweepScheduler parallel(jobs);
        parallel_s += parallel.run(e).wallSeconds;
    }
    state.counters["sweep_cells"] = double(e.size());
    state.counters["sweep_jobs"] = double(jobs);
    state.counters["sweep_serial_s"] = serial_s;
    state.counters["sweep_parallel_s"] = parallel_s;
    state.counters["sweep_speedup"] =
        parallel_s > 0 ? serial_s / parallel_s : 0;
}

BENCHMARK(simScalar)->Unit(benchmark::kMillisecond);
BENCHMARK(simMultiscalar)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(simMultiscalarTracedNull)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(sweepScaling)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/** Wall time of one full run of wc under @p spec. */
double
runSeconds(const workloads::Workload &w, const RunSpec &spec)
{
    const auto t0 = std::chrono::steady_clock::now();
    runWorkload(w, spec);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

/**
 * The fast-path guard: with tracing disabled the simulator must run
 * at least as fast (within 5% noise) as with tracing enabled into a
 * null sink. A regression here means the disabled path started doing
 * per-event work. The two configurations are measured interleaved so
 * slow host-speed drift affects both medians equally.
 */
int
checkDisabledFastPath()
{
    RunSpec off = config::specForShape("ms8-1w");

    RunSpec null_sink = off;
    null_sink.trace.enabled = true;
    null_sink.trace.sink = "null";

    workloads::Workload w = workloads::get("wc");
    constexpr int kReps = 7;
    // Warm up icache/allocator state with one run of each.
    runSeconds(w, off);
    runSeconds(w, null_sink);
    std::vector<double> off_times, null_times;
    for (int i = 0; i < kReps; ++i) {
        off_times.push_back(runSeconds(w, off));
        null_times.push_back(runSeconds(w, null_sink));
    }
    const double t_off = median(off_times);
    const double t_null = median(null_times);

    std::printf("\nTracing fast-path guard (wc, 8 units, median of "
                "%d runs):\n", kReps);
    std::printf("  tracing disabled:     %8.3f ms\n", t_off * 1e3);
    std::printf("  tracing to null sink: %8.3f ms\n", t_null * 1e3);
    std::printf("  ratio disabled/null:  %8.3f (must be <= 1.05)\n",
                t_off / t_null);
    if (t_off > t_null * 1.05) {
        std::fprintf(stderr,
                     "FAIL: tracing-disabled runs are more than 5%% "
                     "slower than null-sink tracing\n");
        return 1;
    }
    std::printf("  OK\n");
    return 0;
}

/**
 * The fast-forward before/after report: wall time of one full run of
 * every workload in both machine modes with MsConfig/ScalarConfig::
 * fastForward off and on. The cycle counts must be identical (the
 * fast-forward is cycle-exact by construction and by the golden-cycle
 * snapshot tests; this guard catches a drift that slipped past both).
 * Writes BENCH_sim_throughput.json with the machine-readable numbers.
 *
 * @return 0 on success, 1 on a cycle mismatch.
 */
int
reportFastForward()
{
    struct Row
    {
        std::string name;
        std::uint64_t cycles = 0;
        std::uint64_t ffCycles = 0;
        double secOff = 0, secOn = 0;
    };
    constexpr int kReps = 3;
    std::vector<Row> rows;
    int rc = 0;

    for (const auto &[name, factory] : workloads::registry()) {
        (void)factory;
        const workloads::Workload w = workloads::get(name);
        // Two machine points per mode: the paper's default memory
        // system, and the long-latency memory of the sensitivity
        // analysis (100-cycle first beat, small caches) where stall
        // spans dominate and the fast-forward should pay off.
        for (int cfg = 0; cfg < 4; ++cfg) {
            const bool multiscalar = cfg & 1;
            const bool slow_mem = cfg & 2;
            // Shapes describe the machine; fast-forward and the
            // slow-memory sensitivity point are runtime toggles on
            // top of the declared base.
            RunSpec off = config::specForShape(
                multiscalar ? "paper-default" : "scalar-1w");
            off.ms.fastForward = false;
            off.scalar.fastForward = false;
            if (slow_mem) {
                off.ms.bus.firstBeatLatency = 100;
                off.scalar.bus.firstBeatLatency = 100;
                off.ms.icache.sizeBytes = 2 * 1024;
                off.scalar.icache.sizeBytes = 2 * 1024;
                off.ms.bankSizeBytes = 1024;
                off.scalar.dcache.sizeBytes = 2 * 1024;
            }
            RunSpec on = off;
            on.ms.fastForward = true;
            on.scalar.fastForward = true;

            Row row;
            row.name = name + (multiscalar ? "/ms4" : "/scalar") +
                       (slow_mem ? "-slowmem" : "");
            const RunResult r_off = runWorkload(w, off);
            const RunResult r_on = runWorkload(w, on);
            row.cycles = r_off.cycles;
            row.ffCycles = r_on.fastForwardedCycles;
            if (r_on.cycles != r_off.cycles) {
                std::fprintf(stderr,
                             "FAIL: %s simulates %llu cycles with "
                             "fast-forward but %llu without\n",
                             row.name.c_str(),
                             (unsigned long long)r_on.cycles,
                             (unsigned long long)r_off.cycles);
                rc = 1;
            }
            std::vector<double> ts_off, ts_on;
            for (int i = 0; i < kReps; ++i) {
                ts_off.push_back(runSeconds(w, off));
                ts_on.push_back(runSeconds(w, on));
            }
            row.secOff = median(ts_off);
            row.secOn = median(ts_on);
            rows.push_back(row);
        }
    }

    std::printf("\nFast-forward before/after (median of %d runs):\n",
                kReps);
    std::printf("  %-18s %12s %14s %14s %8s\n", "workload", "cycles",
                "Mc/s ff=off", "Mc/s ff=on", "speedup");
    double best = 0;
    std::string best_name;
    for (const Row &r : rows) {
        const double cps_off = double(r.cycles) / r.secOff;
        const double cps_on = double(r.cycles) / r.secOn;
        const double speedup = r.secOff / r.secOn;
        if (speedup > best) {
            best = speedup;
            best_name = r.name;
        }
        std::printf("  %-18s %12llu %14.2f %14.2f %7.2fx\n",
                    r.name.c_str(), (unsigned long long)r.cycles,
                    cps_off / 1e6, cps_on / 1e6, speedup);
    }
    std::printf("  best speedup: %.2fx (%s)\n", best,
                best_name.c_str());

    std::FILE *json = std::fopen("BENCH_sim_throughput.json", "w");
    if (!json) {
        std::fprintf(stderr,
                     "FAIL: cannot write BENCH_sim_throughput.json\n");
        return 1;
    }
    std::fprintf(json, "{\n  \"schema\": \"msim-bench-throughput-v1\","
                       "\n  \"reps\": %d,\n  \"workloads\": [\n",
                 kReps);
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            json,
            "    { \"name\": \"%s\", \"cycles\": %llu, "
            "\"fast_forwarded_cycles\": %llu, "
            "\"wall_s_ff_off\": %.6f, \"wall_s_ff_on\": %.6f, "
            "\"sim_cycles_per_s_ff_off\": %.1f, "
            "\"sim_cycles_per_s_ff_on\": %.1f, "
            "\"speedup\": %.4f }%s\n",
            r.name.c_str(), (unsigned long long)r.cycles,
            (unsigned long long)r.ffCycles, r.secOff, r.secOn,
            double(r.cycles) / r.secOff, double(r.cycles) / r.secOn,
            r.secOff / r.secOn, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(json,
                 "  ],\n  \"best_speedup\": %.4f,\n"
                 "  \"best_speedup_workload\": \"%s\"\n}\n",
                 best, best_name.c_str());
    std::fclose(json);
    std::printf("  wrote BENCH_sim_throughput.json\n");
    return rc;
}

/** Informational serial-vs-parallel summary after the benchmarks. */
void
printSweepScalingSummary()
{
    const exp::Experiment e = scalingExperiment();
    exp::SweepScheduler serial(1);
    const double t1 = serial.run(e).wallSeconds;
    const unsigned jobs = exp::SweepScheduler::defaultJobs();
    exp::SweepScheduler parallel(jobs);
    const double tn = parallel.run(e).wallSeconds;
    std::printf("\nSweep scaling (%zu cells):\n", e.size());
    std::printf("  serial (1 job):    %8.3f s\n", t1);
    std::printf("  parallel (%u jobs): %8.3f s\n", jobs, tn);
    std::printf("  speedup:           %8.2fx\n",
                tn > 0 ? t1 / tn : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printSweepScalingSummary();
    const int ff_rc = reportFastForward();
    const int fastpath_rc = checkDisabledFastPath();
    return ff_rc != 0 ? ff_rc : fastpath_rc;
}
