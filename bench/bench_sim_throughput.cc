/**
 * @file
 * Simulator throughput: how many simulated instructions and cycles
 * per host second each machine model achieves. This is the one bench
 * where google-benchmark's statistical repetition is meaningful, so
 * cells run with normal iteration counts.
 *
 * The binary also guards the tracing fast path: after the benchmark
 * cells it times runs with tracing disabled against runs with tracing
 * enabled into a null sink, and fails (exit 1) when the disabled
 * configuration is more than 5% slower — i.e. when instrumentation
 * stops being free for non-tracing users.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "sim/runner.hh"
#include "workloads/workload.hh"

namespace {

using namespace msim;

void
simScalar(benchmark::State &state)
{
    workloads::Workload w = workloads::get("wc");
    RunSpec spec;
    spec.multiscalar = false;
    std::uint64_t instrs = 0, cycles = 0;
    for (auto _ : state) {
        RunResult r = runWorkload(w, spec);
        instrs += r.instructions;
        cycles += r.cycles;
    }
    state.counters["sim_instrs_per_s"] = benchmark::Counter(
        double(instrs), benchmark::Counter::kIsRate);
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
}

void
simMultiscalar(benchmark::State &state)
{
    workloads::Workload w = workloads::get("wc");
    RunSpec spec;
    spec.multiscalar = true;
    spec.ms.numUnits = unsigned(state.range(0));
    std::uint64_t instrs = 0, cycles = 0;
    for (auto _ : state) {
        RunResult r = runWorkload(w, spec);
        instrs += r.instructions;
        cycles += r.cycles;
    }
    state.counters["sim_instrs_per_s"] = benchmark::Counter(
        double(instrs), benchmark::Counter::kIsRate);
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
}

void
simMultiscalarTracedNull(benchmark::State &state)
{
    workloads::Workload w = workloads::get("wc");
    RunSpec spec;
    spec.multiscalar = true;
    spec.ms.numUnits = unsigned(state.range(0));
    spec.trace.enabled = true;
    spec.trace.sink = "null";
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        RunResult r = runWorkload(w, spec);
        cycles += r.cycles;
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
}

BENCHMARK(simScalar)->Unit(benchmark::kMillisecond);
BENCHMARK(simMultiscalar)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(simMultiscalarTracedNull)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/** Wall time of one full run of wc under @p spec. */
double
runSeconds(const workloads::Workload &w, const RunSpec &spec)
{
    const auto t0 = std::chrono::steady_clock::now();
    runWorkload(w, spec);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

/**
 * The fast-path guard: with tracing disabled the simulator must run
 * at least as fast (within 5% noise) as with tracing enabled into a
 * null sink. A regression here means the disabled path started doing
 * per-event work. The two configurations are measured interleaved so
 * slow host-speed drift affects both medians equally.
 */
int
checkDisabledFastPath()
{
    RunSpec off;
    off.multiscalar = true;
    off.ms.numUnits = 8;

    RunSpec null_sink = off;
    null_sink.trace.enabled = true;
    null_sink.trace.sink = "null";

    workloads::Workload w = workloads::get("wc");
    constexpr int kReps = 7;
    // Warm up icache/allocator state with one run of each.
    runSeconds(w, off);
    runSeconds(w, null_sink);
    std::vector<double> off_times, null_times;
    for (int i = 0; i < kReps; ++i) {
        off_times.push_back(runSeconds(w, off));
        null_times.push_back(runSeconds(w, null_sink));
    }
    const double t_off = median(off_times);
    const double t_null = median(null_times);

    std::printf("\nTracing fast-path guard (wc, 8 units, median of "
                "%d runs):\n", kReps);
    std::printf("  tracing disabled:     %8.3f ms\n", t_off * 1e3);
    std::printf("  tracing to null sink: %8.3f ms\n", t_null * 1e3);
    std::printf("  ratio disabled/null:  %8.3f (must be <= 1.05)\n",
                t_off / t_null);
    if (t_off > t_null * 1.05) {
        std::fprintf(stderr,
                     "FAIL: tracing-disabled runs are more than 5%% "
                     "slower than null-sink tracing\n");
        return 1;
    }
    std::printf("  OK\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return checkDisabledFastPath();
}
