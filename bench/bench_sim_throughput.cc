/**
 * @file
 * Simulator throughput: how many simulated instructions and cycles
 * per host second each machine model achieves. This is the one bench
 * where google-benchmark's statistical repetition is meaningful, so
 * cells run with normal iteration counts.
 *
 * Two guards follow the benchmark cells:
 *
 *  - the tracing fast path: runs with tracing disabled are timed
 *    against runs tracing into a null sink, and the binary fails
 *    (exit 1) when the disabled configuration is more than 5%
 *    slower — i.e. when instrumentation stops being free for
 *    non-tracing users;
 *
 *  - sweep scaling: a fixed experiment cell set is executed through
 *    the SweepScheduler serially and with a worker pool, and the
 *    wall-clock ratio is recorded (sweepScaling benchmark counters,
 *    visible in --benchmark_format=json) so the perf trajectory
 *    captures the parallel-sweep speedup alongside raw simulator
 *    throughput.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "exp/experiment.hh"
#include "exp/scheduler.hh"
#include "sim/runner.hh"
#include "workloads/workload.hh"

namespace {

using namespace msim;

void
simScalar(benchmark::State &state)
{
    workloads::Workload w = workloads::get("wc");
    RunSpec spec;
    spec.multiscalar = false;
    std::uint64_t instrs = 0, cycles = 0;
    for (auto _ : state) {
        RunResult r = runWorkload(w, spec);
        instrs += r.instructions;
        cycles += r.cycles;
    }
    state.counters["sim_instrs_per_s"] = benchmark::Counter(
        double(instrs), benchmark::Counter::kIsRate);
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
}

void
simMultiscalar(benchmark::State &state)
{
    workloads::Workload w = workloads::get("wc");
    RunSpec spec;
    spec.multiscalar = true;
    spec.ms.numUnits = unsigned(state.range(0));
    std::uint64_t instrs = 0, cycles = 0;
    for (auto _ : state) {
        RunResult r = runWorkload(w, spec);
        instrs += r.instructions;
        cycles += r.cycles;
    }
    state.counters["sim_instrs_per_s"] = benchmark::Counter(
        double(instrs), benchmark::Counter::kIsRate);
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
}

void
simMultiscalarTracedNull(benchmark::State &state)
{
    workloads::Workload w = workloads::get("wc");
    RunSpec spec;
    spec.multiscalar = true;
    spec.ms.numUnits = unsigned(state.range(0));
    spec.trace.enabled = true;
    spec.trace.sink = "null";
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        RunResult r = runWorkload(w, spec);
        cycles += r.cycles;
    }
    state.counters["sim_cycles_per_s"] = benchmark::Counter(
        double(cycles), benchmark::Counter::kIsRate);
}

/** The fixed cell set used for the sweep-scaling measurement. */
exp::Experiment
scalingExperiment()
{
    exp::Experiment e("throughput-scaling");
    for (const char *name : {"wc", "cmp", "example"}) {
        RunSpec scalar;
        scalar.multiscalar = false;
        e.add(std::string("scale/") + name + "/scalar", name, scalar);
        for (unsigned units : {2u, 4u, 8u}) {
            RunSpec ms;
            ms.multiscalar = true;
            ms.ms.numUnits = units;
            e.add(std::string("scale/") + name + "/" +
                      std::to_string(units) + "u",
                  name, ms);
        }
    }
    return e;
}

/**
 * One serial + one parallel execution of the fixed cell set per
 * iteration; the counters record both wall times and their ratio, so
 * the JSON perf record tracks the multi-core sweep speedup.
 */
void
sweepScaling(benchmark::State &state)
{
    const unsigned jobs = unsigned(state.range(0));
    const exp::Experiment e = scalingExperiment();
    double serial_s = 0, parallel_s = 0;
    for (auto _ : state) {
        exp::SweepScheduler serial(1);
        serial_s += serial.run(e).wallSeconds;
        exp::SweepScheduler parallel(jobs);
        parallel_s += parallel.run(e).wallSeconds;
    }
    state.counters["sweep_cells"] = double(e.size());
    state.counters["sweep_jobs"] = double(jobs);
    state.counters["sweep_serial_s"] = serial_s;
    state.counters["sweep_parallel_s"] = parallel_s;
    state.counters["sweep_speedup"] =
        parallel_s > 0 ? serial_s / parallel_s : 0;
}

BENCHMARK(simScalar)->Unit(benchmark::kMillisecond);
BENCHMARK(simMultiscalar)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(simMultiscalarTracedNull)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(sweepScaling)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/** Wall time of one full run of wc under @p spec. */
double
runSeconds(const workloads::Workload &w, const RunSpec &spec)
{
    const auto t0 = std::chrono::steady_clock::now();
    runWorkload(w, spec);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

double
median(std::vector<double> v)
{
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
}

/**
 * The fast-path guard: with tracing disabled the simulator must run
 * at least as fast (within 5% noise) as with tracing enabled into a
 * null sink. A regression here means the disabled path started doing
 * per-event work. The two configurations are measured interleaved so
 * slow host-speed drift affects both medians equally.
 */
int
checkDisabledFastPath()
{
    RunSpec off;
    off.multiscalar = true;
    off.ms.numUnits = 8;

    RunSpec null_sink = off;
    null_sink.trace.enabled = true;
    null_sink.trace.sink = "null";

    workloads::Workload w = workloads::get("wc");
    constexpr int kReps = 7;
    // Warm up icache/allocator state with one run of each.
    runSeconds(w, off);
    runSeconds(w, null_sink);
    std::vector<double> off_times, null_times;
    for (int i = 0; i < kReps; ++i) {
        off_times.push_back(runSeconds(w, off));
        null_times.push_back(runSeconds(w, null_sink));
    }
    const double t_off = median(off_times);
    const double t_null = median(null_times);

    std::printf("\nTracing fast-path guard (wc, 8 units, median of "
                "%d runs):\n", kReps);
    std::printf("  tracing disabled:     %8.3f ms\n", t_off * 1e3);
    std::printf("  tracing to null sink: %8.3f ms\n", t_null * 1e3);
    std::printf("  ratio disabled/null:  %8.3f (must be <= 1.05)\n",
                t_off / t_null);
    if (t_off > t_null * 1.05) {
        std::fprintf(stderr,
                     "FAIL: tracing-disabled runs are more than 5%% "
                     "slower than null-sink tracing\n");
        return 1;
    }
    std::printf("  OK\n");
    return 0;
}

/** Informational serial-vs-parallel summary after the benchmarks. */
void
printSweepScalingSummary()
{
    const exp::Experiment e = scalingExperiment();
    exp::SweepScheduler serial(1);
    const double t1 = serial.run(e).wallSeconds;
    const unsigned jobs = exp::SweepScheduler::defaultJobs();
    exp::SweepScheduler parallel(jobs);
    const double tn = parallel.run(e).wallSeconds;
    std::printf("\nSweep scaling (%zu cells):\n", e.size());
    std::printf("  serial (1 job):    %8.3f s\n", t1);
    std::printf("  parallel (%u jobs): %8.3f s\n", jobs, tn);
    std::printf("  speedup:           %8.2fx\n",
                tn > 0 ? t1 / tn : 0.0);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    printSweepScalingSummary();
    return checkDisabledFastPath();
}
