/**
 * @file
 * Reproduces Table 2 of the paper: dynamic instruction counts of the
 * scalar and multiscalar binaries of every benchmark, and the percent
 * increase. The extra multiscalar instructions "serve to ensure
 * correct execution (such as the use of release instructions) or to
 * enhance performance (such as the creation of local copies of loop
 * induction variables)".
 *
 * Both binaries come from the same source: lines prefixed @ms exist
 * only in the multiscalar assembly.
 */

#include "bench/bench_common.hh"

namespace {

using namespace msim;
using namespace msim::bench;

void
registerAll()
{
    for (const std::string &name : kPaperOrder) {
        RunSpec scalar;
        scalar.multiscalar = false;
        registerCell("table2/" + name + "/scalar", name, scalar);
        RunSpec ms;
        ms.multiscalar = true;
        ms.ms.numUnits = 4;
        registerCell("table2/" + name + "/multiscalar", name, ms);
    }
}

void
report()
{
    std::printf("\n");
    std::printf("Table 2: Benchmark Instruction Counts\n");
    std::printf("%-10s %14s %14s %10s\n", "Program", "Scalar",
                "Multiscalar", "Increase");
    for (const std::string &name : kPaperOrder) {
        const auto &sc = cache().at("table2/" + name + "/scalar");
        const auto &ms = cache().at("table2/" + name + "/multiscalar");
        const double pct =
            100.0 * (double(ms.instructions) - double(sc.instructions)) /
            double(sc.instructions);
        std::printf("%-10s %14llu %14llu %9.1f%%\n", name.c_str(),
                    (unsigned long long)sc.instructions,
                    (unsigned long long)ms.instructions, pct);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    return msim::bench::benchMain(argc, argv, registerAll, report);
}
