/**
 * @file
 * Reproduces Table 2 of the paper: dynamic instruction counts of the
 * scalar and multiscalar binaries of every benchmark, and the percent
 * increase. The extra multiscalar instructions "serve to ensure
 * correct execution (such as the use of release instructions) or to
 * enhance performance (such as the creation of local copies of loop
 * induction variables)".
 *
 * Both binaries come from the same source: lines prefixed @ms exist
 * only in the multiscalar assembly.
 */

#include "bench/suites.hh"

int
main(int argc, char **argv)
{
    using namespace msim::bench;
    return benchMain(
        argc, argv, "table2", [](auto &e) { declareTable2(e); },
        [](const auto &r) { reportTable2(r); });
}
