/**
 * @file
 * msim-server load generator: N closed-loop loopback clients drive a
 * mixed request stream (pings, stats, assembles, scalar/multiscalar
 * runs, small sweeps) at an in-process server for a fixed wall-clock
 * window and report requests/s plus p50/p95/p99 latency per request
 * class and overall, at saturation (every client always has exactly
 * one request in flight).
 *
 *   bench_server_throughput [--clients N] [--seconds S] [--jobs N]
 *                           [--queue N] [--json FILE] [--smoke]
 *
 * The request mix is deterministic per client (seeded minstd_rand),
 * so two runs issue the same request sequence. The report
 * (BENCH_server_throughput.json, schema msim-bench-server-v1) also
 * carries the server's own counters — program-cache hit rate, shed
 * and error counts — so the perf trajectory can spot cache or
 * admission regressions, not just latency ones.
 *
 * Exit status: 0 when every response was well-formed and no request
 * class was silently starved; 1 otherwise. --smoke shrinks the run
 * for CI gating (fewer clients, sub-second window) but keeps every
 * request class and the JSON report.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "config/machine_shape.hh"
#include "server/client.hh"
#include "server/protocol.hh"
#include "server/server.hh"

namespace {

using namespace msim;
using Clock = std::chrono::steady_clock;

struct Options
{
    unsigned clients = 8;
    double seconds = 5.0;
    unsigned jobs = 0;
    std::size_t queue = 256;
    std::string jsonPath = "BENCH_server_throughput.json";
    bool smoke = false;
};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: bench_server_throughput [--clients N] [--seconds S]\n"
        "                               [--jobs N] [--queue N]\n"
        "                               [--json FILE] [--smoke]\n");
    return 2;
}

/** The request classes of the mix. */
enum class Req
{
    kPing,
    kStats,
    kAssemble,
    kRunScalar,
    kRunMulti,
    kSweep,
};

constexpr const char *kReqNames[] = {
    "ping", "stats", "assemble", "run_scalar", "run_multi", "sweep",
};
constexpr std::size_t kNumReq = 6;

/**
 * Weighted request mix: mostly runs (the service's purpose), a
 * steady trickle of everything else. Sweeps are rare but heavy (3
 * cells each).
 */
Req
pickRequest(std::minstd_rand &rng)
{
    const unsigned r = unsigned(rng() % 100);
    if (r < 10)
        return Req::kPing;
    if (r < 15)
        return Req::kStats;
    if (r < 30)
        return Req::kAssemble;
    if (r < 60)
        return Req::kRunScalar;
    if (r < 90)
        return Req::kRunMulti;
    return Req::kSweep;
}

/** Latencies of one client, microseconds, per request class. */
struct ClientTally
{
    std::vector<double> latencyUs[kNumReq];
    std::uint64_t errors = 0;
    std::string firstError;
};

/** The workloads the mix touches (small, fast cells). */
constexpr const char *kMixWorkloads[] = {"example", "wc", "cmp"};

json::Value
buildRequest(Req req, std::minstd_rand &rng, std::int64_t id)
{
    switch (req) {
      case Req::kPing: {
        json::Value v = json::Value::object();
        v.set("type", json::Value("ping"));
        v.set("id", json::Value(id));
        return v;
      }
      case Req::kStats: {
        json::Value v = json::Value::object();
        v.set("type", json::Value("stats"));
        v.set("id", json::Value(id));
        return v;
      }
      case Req::kAssemble: {
        server::AssembleRequest a;
        a.workload = kMixWorkloads[rng() % 3];
        a.multiscalar = (rng() % 2) == 0;
        return server::makeAssembleRequest(a, id);
      }
      case Req::kRunScalar:
        return server::makeRunRequest(
            kMixWorkloads[rng() % 3],
            config::specForShape("scalar-1w"), 1, id);
      case Req::kRunMulti:
        return server::makeRunRequest(kMixWorkloads[rng() % 3],
                                      config::specForShape("ms4-1w"),
                                      1, id);
      case Req::kSweep: {
        std::vector<exp::Cell> cells;
        for (const char *name : kMixWorkloads) {
            exp::Cell cell;
            cell.name = std::string("mix/") + name;
            cell.workload = name;
            cell.spec = config::specForShape("ms4-1w");
            cells.push_back(std::move(cell));
        }
        return server::makeSweepRequest(cells, id);
      }
    }
    fatal("unhandled request class");
}

void
clientLoop(unsigned index, std::uint16_t port, Clock::time_point tEnd,
           ClientTally &tally)
{
    std::minstd_rand rng(index + 1);
    server::Client client;
    client.connect("127.0.0.1", port);

    std::int64_t id = std::int64_t(index) * 1'000'000;
    // One deterministic pass over every request class first — the
    // per-class percentiles must have samples even on a slow host
    // whose window closes after a handful of requests — then the
    // weighted random mix until the window ends.
    std::size_t sent = 0;
    while (sent < kNumReq || Clock::now() < tEnd) {
        const Req req = sent < kNumReq ? Req(sent) : pickRequest(rng);
        ++sent;
        const json::Value request = buildRequest(req, rng, ++id);
        const auto t0 = Clock::now();
        bool ok = true;
        std::string error;
        try {
            if (req == Req::kSweep) {
                const server::Client::SweepOutcome outcome =
                    client.sweep(request);
                const json::Value *failed =
                    outcome.done.find("cells_failed");
                if (failed == nullptr || failed->asInt() != 0) {
                    ok = false;
                    error = "sweep reported failed cells";
                }
            } else {
                const json::Value response = client.call(request);
                if (server::isErrorFrame(response)) {
                    ok = false;
                    error = response.dump();
                }
            }
        } catch (const FatalError &e) {
            ok = false;
            error = e.what();
        }
        const double us =
            std::chrono::duration<double, std::micro>(Clock::now() -
                                                      t0)
                .count();
        if (ok) {
            tally.latencyUs[std::size_t(req)].push_back(us);
        } else {
            ++tally.errors;
            if (tally.firstError.empty())
                tally.firstError = error;
        }
    }
}

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank = p * double(sorted.size() - 1);
    const std::size_t lo = std::size_t(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - double(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

json::Value
latencyJson(std::vector<double> &sorted)
{
    json::Value v = json::Value::object();
    v.set("count", json::Value(sorted.size()));
    v.set("p50_us", json::Value(percentile(sorted, 0.50)));
    v.set("p95_us", json::Value(percentile(sorted, 0.95)));
    v.set("p99_us", json::Value(percentile(sorted, 0.99)));
    if (!sorted.empty()) {
        double sum = 0;
        for (double x : sorted)
            sum += x;
        v.set("mean_us", json::Value(sum / double(sorted.size())));
        v.set("max_us", json::Value(sorted.back()));
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--clients") {
            opt.clients =
                unsigned(std::strtoul(value(), nullptr, 10));
        } else if (arg == "--seconds") {
            opt.seconds = std::strtod(value(), nullptr);
        } else if (arg == "--jobs" || arg == "-j") {
            opt.jobs = unsigned(std::strtoul(value(), nullptr, 10));
        } else if (arg == "--queue") {
            opt.queue = std::strtoul(value(), nullptr, 10);
        } else if (arg == "--json") {
            opt.jsonPath = value();
        } else if (arg == "--smoke") {
            opt.smoke = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            return usage();
        }
    }
    if (opt.smoke) {
        opt.clients = std::min(opt.clients, 4u);
        opt.seconds = std::min(opt.seconds, 1.0);
    }
    if (opt.clients == 0 || opt.seconds <= 0)
        return usage();

    server::ServerConfig config;
    config.service.jobs = opt.jobs;
    config.service.queueCapacity = opt.queue;
    config.maxConnections = opt.clients + 8;
    server::Server srv(config);
    srv.start();

    // Warm the program cache so the timed window measures service
    // latency, not first-touch assembly; the report still carries the
    // cache counters for the whole run.
    {
        server::Client warm;
        warm.connect("127.0.0.1", srv.port());
        for (const char *name : kMixWorkloads) {
            for (const bool ms : {false, true}) {
                server::AssembleRequest a;
                a.workload = name;
                a.multiscalar = ms;
                const json::Value r =
                    warm.call(server::makeAssembleRequest(a, 1));
                fatalIf(server::isErrorFrame(r),
                        "warmup assemble failed: ", r.dump());
            }
        }
    }

    std::printf("bench_server_throughput: %u clients, %.1fs window, "
                "%u workers, queue %zu\n",
                opt.clients, opt.seconds,
                srv.service().pool().threads(),
                srv.service().pool().queueCapacity());

    std::vector<ClientTally> tallies(opt.clients);
    std::vector<std::thread> threads;
    const auto t0 = Clock::now();
    const auto tEnd =
        t0 + std::chrono::duration_cast<Clock::duration>(
                 std::chrono::duration<double>(opt.seconds));
    threads.reserve(opt.clients);
    for (unsigned i = 0; i < opt.clients; ++i)
        threads.emplace_back([&, i] {
            clientLoop(i, srv.port(), tEnd, tallies[i]);
        });
    for (std::thread &t : threads)
        t.join();
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - t0).count();

    // Final server-side counters, then shut the server down.
    const unsigned workers = srv.service().pool().threads();
    json::Value stats;
    {
        server::Client c;
        c.connect("127.0.0.1", srv.port());
        json::Value statsReq = json::Value::object();
        statsReq.set("type", json::Value("stats"));
        statsReq.set("id", json::Value(1));
        const json::Value response = c.call(statsReq);
        const json::Value *sv = response.find("stats");
        stats = sv != nullptr ? *sv : json::Value::object();
    }
    srv.shutdown();

    // Merge per-client tallies.
    std::vector<double> perClass[kNumReq];
    std::vector<double> overall;
    std::uint64_t errors = 0;
    std::string firstError;
    for (ClientTally &tally : tallies) {
        for (std::size_t c = 0; c < kNumReq; ++c) {
            perClass[c].insert(perClass[c].end(),
                               tally.latencyUs[c].begin(),
                               tally.latencyUs[c].end());
            overall.insert(overall.end(), tally.latencyUs[c].begin(),
                           tally.latencyUs[c].end());
        }
        errors += tally.errors;
        if (firstError.empty())
            firstError = tally.firstError;
    }
    for (auto &v : perClass)
        std::sort(v.begin(), v.end());
    std::sort(overall.begin(), overall.end());

    const double rps = double(overall.size()) / elapsed;
    std::printf("  %zu requests in %.2fs = %.0f requests/s, "
                "%llu errors\n",
                overall.size(), elapsed, rps,
                (unsigned long long)errors);
    std::printf("  overall latency: p50 %.0fus  p95 %.0fus  "
                "p99 %.0fus\n",
                percentile(overall, 0.50), percentile(overall, 0.95),
                percentile(overall, 0.99));
    for (std::size_t c = 0; c < kNumReq; ++c)
        std::printf("  %-10s %8zu reqs  p50 %8.0fus  p99 %8.0fus\n",
                    kReqNames[c], perClass[c].size(),
                    percentile(perClass[c], 0.50),
                    percentile(perClass[c], 0.99));

    // Cache hit rate over the whole run (warmup included).
    double hitRate = 0.0;
    if (const json::Value *cache = stats.find("program_cache")) {
        const json::Value *hits = cache->find("hits");
        const json::Value *misses = cache->find("misses");
        if (hits != nullptr && misses != nullptr &&
            hits->asInt() + misses->asInt() > 0)
            hitRate = double(hits->asInt()) /
                      double(hits->asInt() + misses->asInt());
    }
    std::printf("  program cache hit rate: %.1f%%\n", 100 * hitRate);

    json::Value doc = json::Value::object();
    doc.set("schema", json::Value("msim-bench-server-v1"));
    doc.set("clients", json::Value(opt.clients));
    doc.set("seconds", json::Value(elapsed));
    doc.set("workers", json::Value(workers));
    doc.set("queue_capacity", json::Value(opt.queue));
    doc.set("smoke", json::Value(opt.smoke));
    doc.set("requests_total", json::Value(overall.size()));
    doc.set("requests_per_s", json::Value(rps));
    doc.set("errors", json::Value(errors));
    doc.set("latency", latencyJson(overall));
    json::Value classes = json::Value::object();
    for (std::size_t c = 0; c < kNumReq; ++c)
        classes.set(kReqNames[c], latencyJson(perClass[c]));
    doc.set("latency_by_class", std::move(classes));
    doc.set("cache_hit_rate", json::Value(hitRate));
    doc.set("server_stats", std::move(stats));

    {
        std::ofstream os(opt.jsonPath);
        fatalIf(!os, "cannot open --json file '", opt.jsonPath, "'");
        os << doc.dump() << "\n";
        std::printf("wrote JSON report: %s\n", opt.jsonPath.c_str());
    }

    if (errors != 0) {
        std::fprintf(stderr,
                     "bench_server_throughput: %llu request(s) "
                     "failed; first error: %s\n",
                     (unsigned long long)errors, firstError.c_str());
        return 1;
    }
    // Every class must have seen traffic — a starved class means the
    // mix (or the server) is broken and the percentiles above lie.
    for (std::size_t c = 0; c < kNumReq; ++c) {
        if (perClass[c].empty()) {
            std::fprintf(stderr,
                         "bench_server_throughput: request class %s "
                         "saw no completed requests\n",
                         kReqNames[c]);
            return 1;
        }
    }
    return 0;
}
