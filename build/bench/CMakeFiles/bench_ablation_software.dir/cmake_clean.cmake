file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_software.dir/bench_ablation_software.cc.o"
  "CMakeFiles/bench_ablation_software.dir/bench_ablation_software.cc.o.d"
  "bench_ablation_software"
  "bench_ablation_software.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_software.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
