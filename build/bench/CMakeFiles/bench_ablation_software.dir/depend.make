# Empty dependencies file for bench_ablation_software.
# This may be replaced when dependencies are built.
