# Empty dependencies file for bench_ablation_arb.
# This may be replaced when dependencies are built.
