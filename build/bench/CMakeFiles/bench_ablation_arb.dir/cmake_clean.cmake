file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_arb.dir/bench_ablation_arb.cc.o"
  "CMakeFiles/bench_ablation_arb.dir/bench_ablation_arb.cc.o.d"
  "bench_ablation_arb"
  "bench_ablation_arb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_arb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
