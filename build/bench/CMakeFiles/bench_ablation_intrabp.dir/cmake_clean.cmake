file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_intrabp.dir/bench_ablation_intrabp.cc.o"
  "CMakeFiles/bench_ablation_intrabp.dir/bench_ablation_intrabp.cc.o.d"
  "bench_ablation_intrabp"
  "bench_ablation_intrabp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_intrabp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
