# Empty compiler generated dependencies file for bench_ablation_intrabp.
# This may be replaced when dependencies are built.
