file(REMOVE_RECURSE
  "CMakeFiles/test_arb.dir/test_arb.cc.o"
  "CMakeFiles/test_arb.dir/test_arb.cc.o.d"
  "test_arb"
  "test_arb.pdb"
  "test_arb[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
