# Empty dependencies file for test_arb.
# This may be replaced when dependencies are built.
