# Empty dependencies file for test_pu.
# This may be replaced when dependencies are built.
