file(REMOVE_RECURSE
  "CMakeFiles/test_pu.dir/test_pu.cc.o"
  "CMakeFiles/test_pu.dir/test_pu.cc.o.d"
  "test_pu"
  "test_pu.pdb"
  "test_pu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
