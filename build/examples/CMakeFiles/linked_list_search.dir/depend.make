# Empty dependencies file for linked_list_search.
# This may be replaced when dependencies are built.
