file(REMOVE_RECURSE
  "CMakeFiles/linked_list_search.dir/linked_list_search.cpp.o"
  "CMakeFiles/linked_list_search.dir/linked_list_search.cpp.o.d"
  "linked_list_search"
  "linked_list_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linked_list_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
