# Empty dependencies file for task_explorer.
# This may be replaced when dependencies are built.
