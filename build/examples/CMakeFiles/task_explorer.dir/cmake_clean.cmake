file(REMOVE_RECURSE
  "CMakeFiles/task_explorer.dir/task_explorer.cpp.o"
  "CMakeFiles/task_explorer.dir/task_explorer.cpp.o.d"
  "task_explorer"
  "task_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
