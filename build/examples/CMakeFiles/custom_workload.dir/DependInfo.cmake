
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_workload.cpp" "examples/CMakeFiles/custom_workload.dir/custom_workload.cpp.o" "gcc" "examples/CMakeFiles/custom_workload.dir/custom_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/msim_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/msim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/msim_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/arb/CMakeFiles/msim_arb.dir/DependInfo.cmake"
  "/root/repo/build/src/predict/CMakeFiles/msim_predict.dir/DependInfo.cmake"
  "/root/repo/build/src/pu/CMakeFiles/msim_pu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/msim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/msim_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/msim_program.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/msim_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/msim_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
