# Empty compiler generated dependencies file for msim_pu.
# This may be replaced when dependencies are built.
