file(REMOVE_RECURSE
  "libmsim_pu.a"
)
