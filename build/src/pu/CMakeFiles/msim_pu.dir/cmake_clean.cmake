file(REMOVE_RECURSE
  "CMakeFiles/msim_pu.dir/processing_unit.cc.o"
  "CMakeFiles/msim_pu.dir/processing_unit.cc.o.d"
  "libmsim_pu.a"
  "libmsim_pu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_pu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
