
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pu/processing_unit.cc" "src/pu/CMakeFiles/msim_pu.dir/processing_unit.cc.o" "gcc" "src/pu/CMakeFiles/msim_pu.dir/processing_unit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/msim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/msim_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
