file(REMOVE_RECURSE
  "CMakeFiles/msim_core.dir/multiscalar_processor.cc.o"
  "CMakeFiles/msim_core.dir/multiscalar_processor.cc.o.d"
  "CMakeFiles/msim_core.dir/scalar_processor.cc.o"
  "CMakeFiles/msim_core.dir/scalar_processor.cc.o.d"
  "libmsim_core.a"
  "libmsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
