file(REMOVE_RECURSE
  "libmsim_program.a"
)
