
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/program/task_descriptor.cc" "src/program/CMakeFiles/msim_program.dir/task_descriptor.cc.o" "gcc" "src/program/CMakeFiles/msim_program.dir/task_descriptor.cc.o.d"
  "/root/repo/src/program/task_graph.cc" "src/program/CMakeFiles/msim_program.dir/task_graph.cc.o" "gcc" "src/program/CMakeFiles/msim_program.dir/task_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/msim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/msim_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
