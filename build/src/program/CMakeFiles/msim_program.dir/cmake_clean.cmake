file(REMOVE_RECURSE
  "CMakeFiles/msim_program.dir/task_descriptor.cc.o"
  "CMakeFiles/msim_program.dir/task_descriptor.cc.o.d"
  "CMakeFiles/msim_program.dir/task_graph.cc.o"
  "CMakeFiles/msim_program.dir/task_graph.cc.o.d"
  "libmsim_program.a"
  "libmsim_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
