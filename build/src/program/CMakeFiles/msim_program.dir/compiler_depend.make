# Empty compiler generated dependencies file for msim_program.
# This may be replaced when dependencies are built.
