file(REMOVE_RECURSE
  "CMakeFiles/msim_mem.dir/main_memory.cc.o"
  "CMakeFiles/msim_mem.dir/main_memory.cc.o.d"
  "libmsim_mem.a"
  "libmsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
