file(REMOVE_RECURSE
  "CMakeFiles/msim_asm.dir/assembler.cc.o"
  "CMakeFiles/msim_asm.dir/assembler.cc.o.d"
  "CMakeFiles/msim_asm.dir/lexer.cc.o"
  "CMakeFiles/msim_asm.dir/lexer.cc.o.d"
  "libmsim_asm.a"
  "libmsim_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
