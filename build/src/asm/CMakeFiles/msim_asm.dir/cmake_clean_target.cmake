file(REMOVE_RECURSE
  "libmsim_asm.a"
)
