# Empty compiler generated dependencies file for msim_asm.
# This may be replaced when dependencies are built.
