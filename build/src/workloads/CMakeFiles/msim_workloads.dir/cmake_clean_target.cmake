file(REMOVE_RECURSE
  "libmsim_workloads.a"
)
