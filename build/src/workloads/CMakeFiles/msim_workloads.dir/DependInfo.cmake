
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cmp.cc" "src/workloads/CMakeFiles/msim_workloads.dir/cmp.cc.o" "gcc" "src/workloads/CMakeFiles/msim_workloads.dir/cmp.cc.o.d"
  "/root/repo/src/workloads/compress.cc" "src/workloads/CMakeFiles/msim_workloads.dir/compress.cc.o" "gcc" "src/workloads/CMakeFiles/msim_workloads.dir/compress.cc.o.d"
  "/root/repo/src/workloads/eqntott.cc" "src/workloads/CMakeFiles/msim_workloads.dir/eqntott.cc.o" "gcc" "src/workloads/CMakeFiles/msim_workloads.dir/eqntott.cc.o.d"
  "/root/repo/src/workloads/espresso.cc" "src/workloads/CMakeFiles/msim_workloads.dir/espresso.cc.o" "gcc" "src/workloads/CMakeFiles/msim_workloads.dir/espresso.cc.o.d"
  "/root/repo/src/workloads/example.cc" "src/workloads/CMakeFiles/msim_workloads.dir/example.cc.o" "gcc" "src/workloads/CMakeFiles/msim_workloads.dir/example.cc.o.d"
  "/root/repo/src/workloads/gcc.cc" "src/workloads/CMakeFiles/msim_workloads.dir/gcc.cc.o" "gcc" "src/workloads/CMakeFiles/msim_workloads.dir/gcc.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/workloads/CMakeFiles/msim_workloads.dir/registry.cc.o" "gcc" "src/workloads/CMakeFiles/msim_workloads.dir/registry.cc.o.d"
  "/root/repo/src/workloads/sc.cc" "src/workloads/CMakeFiles/msim_workloads.dir/sc.cc.o" "gcc" "src/workloads/CMakeFiles/msim_workloads.dir/sc.cc.o.d"
  "/root/repo/src/workloads/tomcatv.cc" "src/workloads/CMakeFiles/msim_workloads.dir/tomcatv.cc.o" "gcc" "src/workloads/CMakeFiles/msim_workloads.dir/tomcatv.cc.o.d"
  "/root/repo/src/workloads/wc.cc" "src/workloads/CMakeFiles/msim_workloads.dir/wc.cc.o" "gcc" "src/workloads/CMakeFiles/msim_workloads.dir/wc.cc.o.d"
  "/root/repo/src/workloads/xlisp.cc" "src/workloads/CMakeFiles/msim_workloads.dir/xlisp.cc.o" "gcc" "src/workloads/CMakeFiles/msim_workloads.dir/xlisp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/msim_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/msim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/msim_program.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/msim_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
