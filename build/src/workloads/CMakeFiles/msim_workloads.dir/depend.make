# Empty dependencies file for msim_workloads.
# This may be replaced when dependencies are built.
