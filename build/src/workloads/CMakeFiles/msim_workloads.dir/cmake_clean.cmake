file(REMOVE_RECURSE
  "CMakeFiles/msim_workloads.dir/cmp.cc.o"
  "CMakeFiles/msim_workloads.dir/cmp.cc.o.d"
  "CMakeFiles/msim_workloads.dir/compress.cc.o"
  "CMakeFiles/msim_workloads.dir/compress.cc.o.d"
  "CMakeFiles/msim_workloads.dir/eqntott.cc.o"
  "CMakeFiles/msim_workloads.dir/eqntott.cc.o.d"
  "CMakeFiles/msim_workloads.dir/espresso.cc.o"
  "CMakeFiles/msim_workloads.dir/espresso.cc.o.d"
  "CMakeFiles/msim_workloads.dir/example.cc.o"
  "CMakeFiles/msim_workloads.dir/example.cc.o.d"
  "CMakeFiles/msim_workloads.dir/gcc.cc.o"
  "CMakeFiles/msim_workloads.dir/gcc.cc.o.d"
  "CMakeFiles/msim_workloads.dir/registry.cc.o"
  "CMakeFiles/msim_workloads.dir/registry.cc.o.d"
  "CMakeFiles/msim_workloads.dir/sc.cc.o"
  "CMakeFiles/msim_workloads.dir/sc.cc.o.d"
  "CMakeFiles/msim_workloads.dir/tomcatv.cc.o"
  "CMakeFiles/msim_workloads.dir/tomcatv.cc.o.d"
  "CMakeFiles/msim_workloads.dir/wc.cc.o"
  "CMakeFiles/msim_workloads.dir/wc.cc.o.d"
  "CMakeFiles/msim_workloads.dir/xlisp.cc.o"
  "CMakeFiles/msim_workloads.dir/xlisp.cc.o.d"
  "libmsim_workloads.a"
  "libmsim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
