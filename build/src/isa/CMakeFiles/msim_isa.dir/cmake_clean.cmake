file(REMOVE_RECURSE
  "CMakeFiles/msim_isa.dir/encoding.cc.o"
  "CMakeFiles/msim_isa.dir/encoding.cc.o.d"
  "CMakeFiles/msim_isa.dir/exec.cc.o"
  "CMakeFiles/msim_isa.dir/exec.cc.o.d"
  "CMakeFiles/msim_isa.dir/instruction.cc.o"
  "CMakeFiles/msim_isa.dir/instruction.cc.o.d"
  "CMakeFiles/msim_isa.dir/opcodes.cc.o"
  "CMakeFiles/msim_isa.dir/opcodes.cc.o.d"
  "CMakeFiles/msim_isa.dir/registers.cc.o"
  "CMakeFiles/msim_isa.dir/registers.cc.o.d"
  "libmsim_isa.a"
  "libmsim_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
