# Empty dependencies file for msim_arb.
# This may be replaced when dependencies are built.
