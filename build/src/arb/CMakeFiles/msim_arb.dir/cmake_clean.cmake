file(REMOVE_RECURSE
  "CMakeFiles/msim_arb.dir/arb.cc.o"
  "CMakeFiles/msim_arb.dir/arb.cc.o.d"
  "libmsim_arb.a"
  "libmsim_arb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_arb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
