file(REMOVE_RECURSE
  "libmsim_arb.a"
)
