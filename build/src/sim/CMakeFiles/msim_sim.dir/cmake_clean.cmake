file(REMOVE_RECURSE
  "CMakeFiles/msim_sim.dir/reference.cc.o"
  "CMakeFiles/msim_sim.dir/reference.cc.o.d"
  "CMakeFiles/msim_sim.dir/runner.cc.o"
  "CMakeFiles/msim_sim.dir/runner.cc.o.d"
  "libmsim_sim.a"
  "libmsim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
