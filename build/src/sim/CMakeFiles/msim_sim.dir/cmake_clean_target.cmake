file(REMOVE_RECURSE
  "libmsim_sim.a"
)
