file(REMOVE_RECURSE
  "CMakeFiles/msim_common.dir/reg_mask.cc.o"
  "CMakeFiles/msim_common.dir/reg_mask.cc.o.d"
  "CMakeFiles/msim_common.dir/stats.cc.o"
  "CMakeFiles/msim_common.dir/stats.cc.o.d"
  "libmsim_common.a"
  "libmsim_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
