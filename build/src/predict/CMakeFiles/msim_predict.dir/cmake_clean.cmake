file(REMOVE_RECURSE
  "CMakeFiles/msim_predict.dir/task_predictor.cc.o"
  "CMakeFiles/msim_predict.dir/task_predictor.cc.o.d"
  "libmsim_predict.a"
  "libmsim_predict.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/msim_predict.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
