file(REMOVE_RECURSE
  "libmsim_predict.a"
)
