# Empty dependencies file for msim_predict.
# This may be replaced when dependencies are built.
